"""The per-node repair agent (Section V).

Each storage node runs an :class:`Agent` with:

* a *dispatcher* thread draining the node's inbox,
* a *send worker* that streams chunks out — one chunk at a time as a
  synchronous round trip (the next chunk starts only after the
  destination confirms the previous one is written, matching the
  sequential read->transmit->write decomposition of Eq. (4)); within a
  chunk, a reader thread and the sender loop pipeline packets (the
  paper's multi-threaded pipeline, Experiment B.1),
* one *decode thread per chunk being assembled*, which applies the
  GF(2^8) recovery coefficient to each arriving packet and writes the
  fully decoded chunk to disk (the paper's "one thread for decoding the
  received packets"),
* an optional *heartbeat* thread beaconing liveness to the coordinator.

Migration and reconstruction share one code path: a migration is an
assembly with a single source whose coefficient is 1.

Fault tolerance: every command carries an ``attempt`` number; stale
packets and commands from superseded attempts are dropped, assemblies
write to a staging file and promote atomically, failures that can be
tied to an action are NACKed to the coordinator (instead of dying
silently in a worker thread), and :meth:`crash` stands the whole agent
down the way a killed process would.

Split-brain fencing: every command also carries the coordinator's
``epoch``.  The agent persists the highest epoch it has seen *per
coordinator endpoint* (``coordinator.epoch`` in its store directory
for the default endpoint, ``coordinator.<id>.epoch`` otherwise) and
NACKs any mutating command from an older epoch — so when a crashed
coordinator's successor takes over (announcing its epoch via
:class:`~repro.runtime.messages.InventoryQuery`), the zombie
predecessor can no longer touch the store.  Commands carry the issuing
endpoint in ``reply_to``, so several shard coordinators can drive one
agent concurrently, each fencing only its own predecessors.  Adopting
a newer epoch aborts all in-flight work from older epochs of the same
endpoint, and chunk promotion happens under the same lock as the epoch
bump, so the successor's inventory snapshot is exact.
"""

from __future__ import annotations

import os
import queue
import threading
import time
import zlib
from typing import Callable, Dict, Optional, Set, Tuple

import numpy as np

from ..cluster.chunk import NodeId
from ..ec.galois import gf_addmul_bytes, gf_mul_bytes
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import Tracer
from .config import DEFAULT_CONFIG, RuntimeConfig
from .datanode import ChunkStore
from .messages import (
    ActionKey,
    ChunkDelete,
    ChunkRead,
    ChunkReadReply,
    ChunkWrite,
    ChunkWriteReply,
    DataPacket,
    Heartbeat,
    InventoryQuery,
    InventoryReply,
    Ping,
    Pong,
    ReceiveCommand,
    RelayCommand,
    RepairAck,
    SendCommand,
    Shutdown,
    SlicePacket,
    SliceReport,
    WriteComplete,
    nack,
)
from .transport import Network


def slice_granularity(
    chunk_size: int, packet_size: int, num_slices: int
) -> int:
    """Effective transfer granularity of a (possibly sliced) stream.

    Sliced chained reconstruction carves the chunk into ``num_slices``
    equal slices (the last may run short); ``num_slices == 0`` keeps
    the command's packet size.  Relays and assemblies both derive
    their offsets from this, so slice boundaries agree across every
    hop of a chain regardless of the packet size the run was tuned to.
    """
    if num_slices > 0:
        return max(1, -(-chunk_size // num_slices))
    return packet_size

#: ordering handle for staleness: a bigger (epoch, attempt) supersedes
Generation = Tuple[int, int]


def _generation(message) -> Generation:
    return (message.epoch, message.attempt)

#: cap on buffered packets awaiting a late Receive/Relay registration
MAX_PENDING_PACKETS = 4096

#: sentinel that aborts a blocked assembly/relay worker
_ABORT = object()


class AgentError(RuntimeError):
    """Raised (and recorded) on protocol violations inside an agent."""


class _Assembly:
    """Accumulates coefficient-scaled packets into a repaired chunk.

    Each packet offset is decoded in memory; once every source has
    contributed to an offset, that packet is written to the staging
    file — so receive, decode and write pipeline across packets,
    matching the prototype's multi-threaded repair path (Section V).
    The staged chunk is promoted by :meth:`Agent._run_assembly` (under
    the agent's assembly lock, so promotion serializes with epoch
    fencing) only when complete — a crashed or superseded assembly
    never publishes a torn chunk.
    """

    def __init__(
        self,
        command: ReceiveCommand,
        store: ChunkStore,
        on_slice: Optional[Callable[[int, float], None]] = None,
    ):
        self.command = command
        self.store = store
        self.packets: "queue.Queue" = queue.Queue()
        self._buffer = np.zeros(command.chunk_size, dtype=np.uint8)
        #: offset -> set of sources that already contributed (dedupes
        #: duplicated packets, which would otherwise double-apply coeffs)
        self._arrived: Dict[int, Set[NodeId]] = {}
        #: transfer granularity; for sliced streams this *is* the slice
        self._granularity = slice_granularity(
            command.chunk_size, command.packet_size, command.num_slices
        )
        self._remaining_offsets = self._count_offsets()
        #: best-effort per-slice progress hook (slice_index, elapsed_s)
        self._on_slice = on_slice
        #: completed regions queued to the staging-writer thread, so
        #: the (throttled) disk write overlaps the next packet's GF math
        self._writes: "queue.Queue" = queue.Queue()
        self._write_error: Optional[BaseException] = None
        #: telemetry accumulated over the assembly's lifetime
        self.decode_seconds = 0.0
        self.staging_seconds = 0.0
        self.bytes_received = 0
        #: trace span opened by the agent at command admission
        self.span = None

    def _count_offsets(self) -> int:
        size, packet = self.command.chunk_size, self._granularity
        return (size + packet - 1) // packet

    def abort(self) -> None:
        """Unblock the decode thread; it discards staging and exits."""
        self.packets.put(_ABORT)

    def _staging_writer(self) -> None:
        """Writer-thread body: flush completed regions to the .part file.

        Each queued region is final — every source has contributed and
        duplicates are dropped by the arrived-set — so the decode
        thread never touches those buffer bytes again and the write
        can proceed without copying them out (no ``tobytes``).
        """
        size = self.command.chunk_size
        while True:
            item = self._writes.get()
            if item is None:
                return
            offset, end = item
            started = time.perf_counter()
            try:
                self.store.write_packet(
                    self.command.stripe_id,
                    offset,
                    self._buffer[offset:end],
                    size,
                    staged=True,
                )
            except BaseException as exc:  # surfaced by run() after join
                self._write_error = exc
                return
            self.staging_seconds += time.perf_counter() - started

    def run(self) -> bool:
        """Decode-thread body; returns False if aborted before done.

        On success the chunk is fully staged but *not* promoted — the
        agent publishes it under its assembly lock.
        """
        num_sources = len(self.command.sources)
        size = self.command.chunk_size
        writer = threading.Thread(
            target=self._staging_writer,
            name=f"agent-staging-{self.command.key}",
            daemon=True,
        )
        writer.start()
        started_at = time.perf_counter()
        try:
            while self._remaining_offsets > 0:
                packet = self.packets.get()
                if packet is _ABORT:
                    return False
                if (
                    packet.attempt != self.command.attempt
                    or packet.epoch != self.command.epoch
                ):
                    continue  # stale retry traffic (or a fenced epoch's)
                if (
                    packet.checksum is not None
                    and zlib.crc32(packet.payload) != packet.checksum
                ):
                    continue  # corrupted in flight; the round trip stalls
                coeff = self.command.sources.get(packet.source)
                if coeff is None:
                    raise AgentError(
                        f"unexpected packet source {packet.source} for "
                        f"{self.command.key}"
                    )
                data = np.frombuffer(packet.payload, dtype=np.uint8)
                end = packet.offset + len(data)
                if end > size:
                    raise AgentError(
                        f"packet overruns chunk at {packet.offset}"
                    )
                arrived = self._arrived.setdefault(packet.offset, set())
                if packet.source in arrived:
                    continue  # duplicated delivery
                arrived.add(packet.source)
                self.bytes_received += len(data)
                started = time.perf_counter()
                gf_addmul_bytes(self._buffer[packet.offset : end], coeff, data)
                self.decode_seconds += time.perf_counter() - started
                if len(arrived) == num_sources:
                    # Keep the arrived set for the assembly's lifetime:
                    # dropping it would let a duplicate delivered after
                    # the offset completed double-apply its coefficient
                    # and re-trigger the completion below.
                    self._remaining_offsets -= 1
                    # Fully decoded region: hand it to the writer.
                    self._writes.put((packet.offset, end))
                    if (
                        self._on_slice is not None
                        and self.command.num_slices > 0
                    ):
                        self._on_slice(
                            packet.offset // self._granularity,
                            time.perf_counter() - started_at,
                        )
                if self._write_error is not None:
                    break
            return self._finish_writer(writer)
        finally:
            if writer.is_alive():
                self._writes.put(None)
                writer.join()
            if self._remaining_offsets > 0:
                self.store.discard_staged(self.command.stripe_id)

    def _finish_writer(self, writer: threading.Thread) -> bool:
        self._writes.put(None)
        writer.join()
        if self._write_error is not None:
            raise self._write_error
        return True


class _Relay:
    """One stage of a repair pipeline (Li et al.'s repair pipelining).

    Reads the node's own chunk of the stripe packet by packet, scales
    it by the recovery coefficient, XORs in the upstream stage's
    partial sum (unless this is the first stage), and forwards the
    result to the next hop.
    """

    def __init__(self, command: RelayCommand, store: ChunkStore, agent: "Agent"):
        self.command = command
        self.store = store
        self.agent = agent
        self.packets: "queue.Queue" = queue.Queue()

    def abort(self) -> None:
        self.packets.put(_ABORT)

    def run(self) -> None:
        command = self.command
        size = self.store.size(command.stripe_id)
        if size != command.chunk_size:
            raise AgentError(
                f"relay chunk size mismatch: stored {size}, command "
                f"{command.chunk_size}"
            )
        packet_size = slice_granularity(
            size, min(command.packet_size, size), command.num_slices
        )
        offsets = range(0, size, packet_size)
        # Double-buffered chunk reads: a reader thread fills one
        # preallocated buffer while the GF math consumes the other, so
        # (throttled) disk I/O overlaps compute.  Buffers cycle through
        # a free-list, so one is never refilled before the math is done
        # with it.
        bufs = [
            np.empty(packet_size, dtype=np.uint8),
            np.empty(packet_size, dtype=np.uint8),
        ]
        free: "queue.Queue" = queue.Queue()
        free.put(0)
        free.put(1)
        ready: "queue.Queue" = queue.Queue()

        def read_ahead():
            try:
                for offset in offsets:
                    length = min(packet_size, size - offset)
                    index = free.get()
                    if index is None:
                        return  # relay finished early (abort/supersede)
                    self.store.read_packet_into(
                        command.stripe_id, offset, bufs[index][:length]
                    )
                    ready.put((index, length))
            except Exception as exc:
                ready.put(exc)

        reader = threading.Thread(
            target=read_ahead,
            name=f"agent-{self.agent.node_id}-relay-read",
            daemon=True,
        )
        reader.start()
        try:
            for offset in offsets:
                item = ready.get()
                if isinstance(item, BaseException):
                    raise item
                index, length = item
                own = bufs[index][:length]
                # Fresh output per packet: the transport may reference
                # the payload from its send queue after we return, so
                # send buffers are never reused (ownership transfers).
                out = gf_mul_bytes(command.coeff, own)
                free.put(index)  # own is consumed; reader may refill
                if not command.first:
                    upstream = self._next_upstream(offset)
                    if upstream is None:
                        return  # aborted or superseded
                    np.bitwise_xor(
                        out,
                        np.frombuffer(upstream.payload, dtype=np.uint8),
                        out=out,
                    )
                payload = out.data  # zero-copy view; no bytes join
                self.agent._bytes_sent.inc(length, node=self.agent.node_id)
                if command.num_slices > 0:
                    packet = SlicePacket(
                        stripe_id=command.stripe_id,
                        chunk_index=command.chunk_index,
                        source=self.agent.node_id,
                        offset=offset,
                        payload=payload,
                        attempt=command.attempt,
                        epoch=command.epoch,
                        checksum=zlib.crc32(payload),
                        slice_index=offset // packet_size,
                        num_slices=command.num_slices,
                        chain_pos=command.chain_pos,
                    )
                else:
                    packet = DataPacket(
                        stripe_id=command.stripe_id,
                        chunk_index=command.chunk_index,
                        source=self.agent.node_id,
                        offset=offset,
                        payload=payload,
                        attempt=command.attempt,
                        epoch=command.epoch,
                        checksum=zlib.crc32(payload),
                    )
                self.agent.network.send(
                    self.agent.node_id, command.destination, packet
                )
        finally:
            free.put(None)  # unblock the reader if it is still ahead
            reader.join()

    def _next_upstream(self, offset: int) -> Optional[DataPacket]:
        """Next valid upstream packet for ``offset``; None on abort."""
        timeout = self.agent.ack_timeout
        while True:
            try:
                upstream = self.packets.get(timeout=timeout)
            except queue.Empty:
                raise AgentError(
                    f"relay {self.command.key} at node {self.agent.node_id}: "
                    f"no upstream packet for offset {offset} within {timeout}s"
                ) from None
            if upstream is _ABORT:
                return None
            if (
                upstream.attempt != self.command.attempt
                or upstream.epoch != self.command.epoch
            ):
                continue
            if (
                upstream.checksum is not None
                and zlib.crc32(upstream.payload) != upstream.checksum
            ):
                continue  # corrupted partial sum; wait for a retry
            if upstream.offset != offset:
                if upstream.offset < offset:
                    # Duplicated delivery of an already-consumed partial
                    # sum (the links may replay frames); drop and keep
                    # waiting for the expected offset.
                    continue
                raise AgentError(
                    f"pipeline packet out of order: got offset "
                    f"{upstream.offset}, expected {offset}"
                )
            return upstream


class Agent:
    """A storage node's repair agent.

    Args:
        node_id: this node.
        store: the node's chunk store.
        network: shared in-process network (already attached).
        coordinator_id: default coordinator endpoint — the heartbeat
            target and the reply address for messages that carry no
            ``reply_to``.  Replies to commands go to the command's own
            ``reply_to`` endpoint.
        pipeline_depth: bounded queue between the packet reader and the
            packet sender; 0 disables pipelining (read the whole chunk,
            then send).
        ack_timeout: seconds a sender waits for a destination's
            :class:`WriteComplete` before NACKing the coordinator
            (defaults to ``config.ack_timeout``).
        config: runtime timeouts and heartbeat cadence.
        metrics: optional :class:`~repro.obs.MetricsRegistry` shared by
            the run; omitted -> a private throwaway registry.
        tracer: optional :class:`~repro.obs.Tracer`; omitted -> a
            disabled tracer that records nothing.
    """

    def __init__(
        self,
        node_id: NodeId,
        store: ChunkStore,
        network: Network,
        coordinator_id: NodeId,
        pipeline_depth: int = 2,
        ack_timeout: Optional[float] = None,
        config: Optional[RuntimeConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.node_id = node_id
        self.store = store
        self.network = network
        self.coordinator_id = coordinator_id
        self.pipeline_depth = pipeline_depth
        self.config = config or DEFAULT_CONFIG
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        m = self.metrics
        self._bytes_sent = m.counter(
            "agent_bytes_sent_total", "repair payload bytes sent, by node"
        )
        self._bytes_received = m.counter(
            "agent_bytes_received_total",
            "repair payload bytes decoded into assemblies, by node",
        )
        self._decode_hist = m.histogram(
            "agent_decode_seconds", "GF-decode CPU time per assembled chunk"
        )
        self._staging_hist = m.histogram(
            "agent_staging_seconds",
            "staged-write (throttled disk) time per assembled chunk",
        )
        self._fence_counter = m.counter(
            "agent_epoch_fences_total",
            "commands NACKed for carrying a fenced (stale) epoch",
        )
        self._promotions_counter = m.counter(
            "agent_promotions_total",
            "staged chunks atomically promoted, by node",
        )
        self.ack_timeout = (
            ack_timeout if ack_timeout is not None else self.config.ack_timeout
        )
        self._endpoint = network.endpoint(node_id)
        self._assemblies: Dict[ActionKey, _Assembly] = {}
        self._relays: Dict[ActionKey, _Relay] = {}
        self._pending: Dict[ActionKey, list] = {}
        #: newest (epoch, attempt) seen per action (commands are authoritative)
        self._attempts: Dict[ActionKey, Generation] = {}
        #: (epoch, attempt) at which an assembly last completed here
        self._completed: Dict[ActionKey, Generation] = {}
        #: highest epoch seen per coordinator endpoint; persisted for
        #: fencing (lazily loaded on first contact with an endpoint)
        self._epochs: Dict[NodeId, int] = {}
        self._epoch_for(coordinator_id)
        self._assembly_lock = threading.Lock()
        self._send_queue: "queue.Queue" = queue.Queue()
        #: gateway chunk ops (ChunkRead/ChunkWrite/ChunkDelete) are
        #: served off the dispatcher thread so a throttled client read
        #: never delays repair traffic dispatch
        self._client_queue: "queue.Queue" = queue.Queue()
        self._write_acks: Dict[tuple, threading.Event] = {}
        self._ack_lock = threading.Lock()
        self._threads = []
        self.errors = []
        self._started = False
        self._stop_event = threading.Event()
        #: set when the dispatcher exits (Shutdown received or crash);
        #: a standalone agent process waits on this before exiting
        self.done = threading.Event()
        self.crashed = False

    # ------------------------------------------------------------------

    def start(self, heartbeat: bool = False) -> None:
        """Start the worker loops (and, optionally, heartbeats)."""
        if self._started:
            return
        self._started = True
        self._stop_event.clear()
        self.done.clear()
        loops = [
            (self._dispatch_loop, "dispatch"),
            (self._send_loop, "send"),
            (self._client_loop, "client"),
        ]
        if heartbeat and self.config.heartbeat_interval > 0:
            loops.append((self._heartbeat_loop, "heartbeat"))
        for target, name in loops:
            thread = threading.Thread(
                target=self._guard(target),
                name=f"agent-{self.node_id}-{name}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        """Stop both worker loops and join them."""
        self._stop_event.set()
        self._endpoint.inbox.put(Shutdown())
        self._send_queue.put(None)
        self._client_queue.put(None)
        for thread in self._threads:
            thread.join(timeout=self.config.join_timeout)
        self._threads = []
        self._started = False

    def crash(self) -> None:
        """Stand down as if the node's process was killed.

        Aborts every in-flight assembly/relay (discarding staged
        writes), releases blocked waiters, and silences error
        recording — a dead node does not report anything.  The network
        side (black-holing the endpoint) is the fault injector's job.
        """
        self.crashed = True
        self._stop_event.set()
        with self._assembly_lock:
            for assembly in self._assemblies.values():
                assembly.abort()
            for relay in self._relays.values():
                relay.abort()
            self._assemblies.clear()
            self._relays.clear()
            self._pending.clear()
        with self._ack_lock:
            for event in self._write_acks.values():
                event.set()
        self._endpoint.inbox.put(Shutdown())
        self._send_queue.put(None)
        self._client_queue.put(None)

    def _guard(
        self,
        fn,
        key: Optional[ActionKey] = None,
        attempt: int = 0,
        epoch: int = 0,
        reply_to: Optional[NodeId] = None,
    ):
        def runner():
            try:
                fn()
            except Exception as exc:
                if self.crashed:
                    return  # dead nodes don't file reports
                if key is not None:
                    self._nack(
                        key,
                        attempt,
                        f"{type(exc).__name__}: {exc}",
                        epoch,
                        reply_to=reply_to,
                    )
                else:
                    self.errors.append(exc)

        return runner

    def _nack(
        self,
        key: ActionKey,
        attempt: int,
        detail: str,
        epoch: int = 0,
        reply_to: Optional[NodeId] = None,
    ) -> None:
        """Report an action-scoped failure to the issuing coordinator."""
        target = self.coordinator_id if reply_to is None else reply_to
        try:
            self.network.send(
                self.node_id,
                target,
                nack(key, self.node_id, attempt, detail, epoch=epoch),
            )
        except Exception as exc:  # pragma: no cover - coordinator gone
            self.errors.append(exc)

    # -- coordinator epochs (split-brain fencing) ----------------------

    def _epoch_path(self, coordinator: NodeId):
        # The default endpoint keeps the historical file name so stores
        # written by single-coordinator runs stay readable.
        if coordinator == self.coordinator_id:
            return self.store.root / "coordinator.epoch"
        return self.store.root / f"coordinator.{coordinator}.epoch"

    def _epoch_for(self, coordinator: NodeId) -> int:
        """Highest epoch seen from this endpoint (lazy persisted load)."""
        epoch = self._epochs.get(coordinator)
        if epoch is None:
            try:
                epoch = int(self._epoch_path(coordinator).read_text())
            except (FileNotFoundError, ValueError):
                epoch = 0
            self._epochs[coordinator] = epoch
        return epoch

    def _bump_epoch(self, coordinator: NodeId, epoch: int) -> None:
        """Adopt a newer epoch for one endpoint; fence everything older.

        In-flight assemblies and relays started under an older epoch of
        the same coordinator endpoint are aborted (their staged writes
        discarded), buffered stale packets are dropped, and the new
        epoch is persisted atomically so fencing survives an agent
        restart.  Runs under the assembly lock: promotion also takes
        that lock, so after the bump no old-epoch chunk can ever be
        published.
        """
        with self._assembly_lock:
            if epoch <= self._epoch_for(coordinator):
                return
            self._epochs[coordinator] = epoch
            for key, assembly in list(self._assemblies.items()):
                command = assembly.command
                if command.reply_to == coordinator and command.epoch < epoch:
                    assembly.abort()
                    del self._assemblies[key]
            for key, relay in list(self._relays.items()):
                command = relay.command
                if command.reply_to == coordinator and command.epoch < epoch:
                    relay.abort()
                    del self._relays[key]
            # Pending packets predate their command, so their owning
            # endpoint is unknown; dropping stale-looking ones from a
            # foreign shard is safe (the sender's round trip stalls and
            # the action is retried) and rare.
            for key, packets in list(self._pending.items()):
                fresh = [p for p in packets if p.epoch >= epoch]
                if fresh:
                    self._pending[key] = fresh
                else:
                    del self._pending[key]
            path = self._epoch_path(coordinator)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(str(epoch))
            os.replace(tmp, path)

    def _admit_command(self, command) -> bool:
        """Epoch-fence a mutating command; True if it may execute.

        A command from an older epoch than the highest seen from its
        ``reply_to`` endpoint comes from a fenced (zombie) coordinator:
        it is NACKed and must never mutate the store.  A newer epoch is
        adopted first.
        """
        coordinator = command.reply_to
        current = self._epoch_for(coordinator)
        if command.epoch > current:
            self._bump_epoch(coordinator, command.epoch)
        elif command.epoch < current:
            self._fence_counter.inc(node=self.node_id)
            self._nack(
                command.key,
                command.attempt,
                f"stale epoch {command.epoch} < {current}",
                epoch=command.epoch,
                reply_to=coordinator,
            )
            return False
        return True

    # ------------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        try:
            self._dispatch_until_shutdown()
        finally:
            self.done.set()

    def _dispatch_until_shutdown(self) -> None:
        while True:
            message = self._endpoint.inbox.get()
            if isinstance(message, Shutdown):
                return
            try:
                self._dispatch_one(message)
            except Exception as exc:
                if self.crashed:
                    return
                # Surface at the repair level when the failure names an
                # action; record otherwise.  One malformed message must
                # not wedge the whole node either way.
                key = getattr(message, "key", None)
                attempt = getattr(message, "attempt", 0)
                epoch = getattr(message, "epoch", 0)
                reply_to = getattr(message, "reply_to", None)
                if key is not None:
                    self._nack(
                        key,
                        attempt,
                        f"{type(exc).__name__}: {exc}",
                        epoch,
                        reply_to=reply_to,
                    )
                else:
                    self.errors.append(exc)

    def _dispatch_one(self, message) -> None:
        if isinstance(
            message, (ReceiveCommand, SendCommand, RelayCommand)
        ) and not self._admit_command(message):
            return  # fenced: a stale-epoch coordinator mutates nothing
        # Gateway chunk ops first: ChunkWrite subclasses DataPacket, so
        # it must be claimed before the generic packet-routing branch.
        if isinstance(message, (ChunkWrite, ChunkRead, ChunkDelete)):
            self._client_queue.put(message)
            return
        if isinstance(message, ReceiveCommand):
            self._start_assembly(message)
        elif isinstance(message, SendCommand):
            if self._note_attempt(message.key, _generation(message)):
                self._send_queue.put(message)
        elif isinstance(message, RelayCommand):
            self._start_relay(message)
        elif isinstance(message, DataPacket):
            self._route_packet(message)
        elif isinstance(message, WriteComplete):
            self._ack_event(
                (message.key, message.epoch, message.attempt)
            ).set()
        elif isinstance(message, Ping):
            self.network.send(
                self.node_id, message.reply_to, Pong(self.node_id, message.nonce)
            )
        elif isinstance(message, InventoryQuery):
            self._answer_inventory(message)
        else:
            raise AgentError(f"unknown message {message!r}")

    def _answer_inventory(self, query: InventoryQuery) -> None:
        """Report durably stored stripes (and adopt the new epoch).

        The listing runs under the assembly lock — the same lock chunk
        promotion takes — so the reply is an exact snapshot: every
        listed chunk is fully promoted, and (after the epoch bump) no
        fenced old-epoch work can add chunks behind the reply's back.
        """
        coordinator = query.reply_to
        if query.epoch > self._epoch_for(coordinator):
            self._bump_epoch(coordinator, query.epoch)
        with self._assembly_lock:
            stripes = tuple(self.store.stripes())
        self.network.send(
            self.node_id,
            coordinator,
            InventoryReply(
                self.node_id, self._epoch_for(coordinator), query.nonce, stripes
            ),
        )

    def _note_attempt(self, key: ActionKey, generation: Generation) -> bool:
        """Track the newest (epoch, attempt) per action; False if stale.

        Commands arrive in issue order (per-inbox FIFO from the single
        coordinator of each epoch), so a smaller generation than the
        recorded one means a stale duplicate and is dropped.
        """
        with self._assembly_lock:
            current = self._attempts.get(key)
            if current is not None and generation < current:
                return False
            self._attempts[key] = generation
            return True

    def _ack_event(self, key) -> threading.Event:
        with self._ack_lock:
            event = self._write_acks.get(key)
            if event is None:
                event = threading.Event()
                self._write_acks[key] = event
            return event

    def _start_assembly(self, command: ReceiveCommand) -> None:
        if not self._note_attempt(command.key, _generation(command)):
            return
        on_slice = None
        if command.num_slices > 0:

            def on_slice(slice_index: int, elapsed: float) -> None:
                # Best-effort progress stream: a lost report only dims
                # the coordinator's per-slice journal, never the repair.
                try:
                    self.network.send(
                        self.node_id,
                        command.reply_to,
                        SliceReport(
                            stripe_id=command.stripe_id,
                            chunk_index=command.chunk_index,
                            node_id=self.node_id,
                            slice_index=slice_index,
                            num_slices=command.num_slices,
                            attempt=command.attempt,
                            epoch=command.epoch,
                            elapsed=elapsed,
                        ),
                    )
                except Exception:
                    pass

        assembly = _Assembly(command, self.store, on_slice=on_slice)
        assembly.span = self.tracer.start_span(
            "assembly",
            node=self.node_id,
            stripe=command.stripe_id,
            chunk=command.chunk_index,
            epoch=command.epoch,
            attempt=command.attempt,
        )
        with self._assembly_lock:
            existing = self._assemblies.get(command.key)
            if existing is not None:
                if _generation(existing.command) == _generation(command):
                    raise AgentError(f"duplicate assembly {command.key}")
                existing.abort()  # superseded by a retry or a new epoch
            self._completed.pop(command.key, None)
            self._assemblies[command.key] = assembly
            for packet in self._pending.pop(command.key, []):
                assembly.packets.put(packet)
        thread = threading.Thread(
            target=self._guard(
                lambda: self._run_assembly(assembly),
                key=command.key,
                attempt=command.attempt,
                epoch=command.epoch,
                reply_to=command.reply_to,
            ),
            name=f"agent-{self.node_id}-decode-{command.key}",
            daemon=True,
        )
        thread.start()

    def _start_relay(self, command: RelayCommand) -> None:
        if not self._note_attempt(command.key, _generation(command)):
            return
        relay = _Relay(command, self.store, self)
        with self._assembly_lock:
            existing = self._relays.get(command.key)
            if existing is not None:
                if _generation(existing.command) == _generation(command):
                    raise AgentError(f"duplicate relay {command.key}")
                existing.abort()
            self._relays[command.key] = relay
            for packet in self._pending.pop(command.key, []):
                relay.packets.put(packet)
        thread = threading.Thread(
            target=self._guard(
                lambda: self._run_relay(relay),
                key=command.key,
                attempt=command.attempt,
                epoch=command.epoch,
                reply_to=command.reply_to,
            ),
            name=f"agent-{self.node_id}-relay-{command.key}",
            daemon=True,
        )
        thread.start()

    def _run_relay(self, relay: _Relay) -> None:
        try:
            relay.run()
        finally:
            with self._assembly_lock:
                if self._relays.get(relay.command.key) is relay:
                    self._relays.pop(relay.command.key, None)

    def _run_assembly(self, assembly: _Assembly) -> None:
        decoded = assembly.run()
        key = assembly.command.key
        attempt = assembly.command.attempt
        epoch = assembly.command.epoch
        promoted = False
        with self._assembly_lock:
            current = self._assemblies.get(key) is assembly
            if current:
                del self._assemblies[key]
            fenced = epoch < self._epoch_for(assembly.command.reply_to)
            if decoded and current and not fenced:
                # Publish under the lock: an epoch bump (fencing) and
                # a promotion cannot interleave, so a successor
                # coordinator's inventory snapshot is exact.
                promo = self.tracer.start_span(
                    "promotion", parent=assembly.span, node=self.node_id
                )
                self.store.promote(assembly.command.stripe_id)
                promo.finish()
                self._completed[key] = (epoch, attempt)
                self._pending.pop(key, None)
                promoted = True
            elif decoded:
                # Fully decoded, but fenced or superseded meanwhile: a
                # fenced epoch must not publish anything.
                self.store.discard_staged(assembly.command.stripe_id)
        if not promoted:
            if assembly.span is not None:
                assembly.span.finish(promoted=False)
            return  # aborted, superseded or fenced
        self._promotions_counter.inc(node=self.node_id)
        self._bytes_received.inc(assembly.bytes_received, node=self.node_id)
        self._decode_hist.observe(assembly.decode_seconds)
        self._staging_hist.observe(assembly.staging_seconds)
        if assembly.span is not None:
            assembly.span.finish(
                promoted=True,
                decode_seconds=assembly.decode_seconds,
                staging_seconds=assembly.staging_seconds,
                bytes=assembly.bytes_received,
            )
        # Unblock every source's synchronous round trip...
        for source in assembly.command.sources:
            self.network.send(
                self.node_id,
                source,
                WriteComplete(key[0], key[1], attempt, epoch),
            )
        # ...then report completion to the issuing coordinator.
        self.network.send(
            self.node_id,
            assembly.command.reply_to,
            RepairAck(
                key[0], key[1], self.node_id, attempt=attempt, epoch=epoch
            ),
        )

    def _route_packet(self, packet: DataPacket) -> None:
        with self._assembly_lock:
            current = self._attempts.get(packet.key)
            if current is not None and _generation(packet) < current:
                return  # stale traffic from a superseded attempt/epoch
            if self._completed.get(packet.key) == _generation(packet):
                return  # late duplicate after completion
            target = self._assemblies.get(packet.key) or self._relays.get(
                packet.key
            )
            if target is None:
                # The Receive/Relay command may still be in flight on a
                # pipelined path; buffer until it registers.
                pending = self._pending.setdefault(packet.key, [])
                if len(pending) >= MAX_PENDING_PACKETS:
                    raise AgentError(
                        f"pending-packet overflow for {packet.key} at node "
                        f"{self.node_id}: no Receive/Relay command arrived"
                    )
                pending.append(packet)
                return
        target.packets.put(packet)

    # -- gateway chunk service (DESIGN.md §15) -------------------------

    def _client_loop(self) -> None:
        """Serve gateway chunk ops (reads, writes, deletes) in order.

        One worker per node serializes client disk I/O — the same
        serial-device discipline the repair path's throttled store
        models — while keeping it off the dispatcher thread.
        """
        while True:
            message = self._client_queue.get()
            if message is None:
                return
            if self.crashed or self._stop_event.is_set():
                return
            try:
                self._serve_client(message)
            except Exception as exc:
                if self.crashed:
                    return
                self.errors.append(exc)

    def _client_reply(self, reply_to: NodeId, reply) -> None:
        try:
            self.network.send(self.node_id, reply_to, reply)
        except KeyError:
            pass  # gateway gone; nothing to tell

    def _serve_client(self, message) -> None:
        if isinstance(message, ChunkRead):
            try:
                payload = self.store.read(message.stripe_id, throttled=True)
            except (KeyError, OSError) as exc:
                self._client_reply(
                    message.reply_to,
                    ChunkReadReply(
                        stripe_id=message.stripe_id,
                        chunk_index=message.chunk_index,
                        source=self.node_id,
                        offset=0,
                        payload=b"",
                        nonce=message.nonce,
                        ok=False,
                        detail=f"{type(exc).__name__}: {exc}",
                    ),
                )
                return
            self._client_reply(
                message.reply_to,
                ChunkReadReply(
                    stripe_id=message.stripe_id,
                    chunk_index=message.chunk_index,
                    source=self.node_id,
                    offset=0,
                    payload=payload,
                    checksum=zlib.crc32(payload),
                    nonce=message.nonce,
                ),
            )
            return
        if isinstance(message, ChunkWrite):
            ok, detail = True, ""
            payload = bytes(message.payload)
            if (
                message.checksum is not None
                and zlib.crc32(payload) != message.checksum
            ):
                ok, detail = False, "payload checksum mismatch"
            else:
                try:
                    self.store.put(message.stripe_id, payload, throttled=True)
                except OSError as exc:
                    ok, detail = False, f"{type(exc).__name__}: {exc}"
            self._client_reply(
                message.reply_to,
                ChunkWriteReply(
                    stripe_id=message.stripe_id,
                    chunk_index=message.chunk_index,
                    node_id=self.node_id,
                    nonce=message.nonce,
                    ok=ok,
                    detail=detail,
                ),
            )
            return
        if isinstance(message, ChunkDelete):
            try:
                self.store.delete(message.stripe_id)
                ok, detail = True, ""
            except OSError as exc:
                ok, detail = False, f"{type(exc).__name__}: {exc}"
            self._client_reply(
                message.reply_to,
                ChunkWriteReply(
                    stripe_id=message.stripe_id,
                    chunk_index=message.chunk_index,
                    node_id=self.node_id,
                    nonce=message.nonce,
                    ok=ok,
                    detail=detail,
                ),
            )
            return
        raise AgentError(f"unknown client op {message!r}")

    # ------------------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        interval = self.config.heartbeat_interval
        while not self._stop_event.wait(timeout=interval):
            if self.crashed:
                return
            try:
                self.network.send(
                    self.node_id, self.coordinator_id, Heartbeat(self.node_id)
                )
            except KeyError:
                # The coordinator endpoint is detached mid-takeover
                # (recovery re-attaches a successor at the same id);
                # skip the beat rather than dying over the window.
                continue

    # ------------------------------------------------------------------

    def _send_loop(self) -> None:
        while True:
            command: Optional[SendCommand] = self._send_queue.get()
            if command is None:
                return
            if self.crashed:
                return
            key = command.key
            generation = _generation(command)
            with self._assembly_lock:
                if self._attempts.get(key, generation) > generation:
                    continue  # superseded before we even started
                if command.epoch < self._epoch_for(command.reply_to):
                    continue  # fenced while queued
            event = self._ack_event((key, command.epoch, command.attempt))
            try:
                self._stream_chunk(command)
            except Exception as exc:
                if self.crashed:
                    return
                self._nack(
                    key,
                    command.attempt,
                    f"{type(exc).__name__}: {exc}",
                    command.epoch,
                    reply_to=command.reply_to,
                )
                continue
            # Synchronous round trip: wait until the destination has
            # durably written the repaired chunk.  The wait is
            # cancellable: a crash or a newer attempt abandons it.
            self._await_write_complete(command, event)

    def _await_write_complete(
        self, command: SendCommand, event: threading.Event
    ) -> None:
        key = command.key
        generation = _generation(command)
        tick = self.config.poll_interval
        waited = 0.0
        try:
            while not event.wait(timeout=tick):
                waited += tick
                if self.crashed or self._stop_event.is_set():
                    return
                with self._assembly_lock:
                    if self._attempts.get(key, generation) > generation:
                        return  # superseded by a retry; stop waiting
                    if command.epoch < self._epoch_for(command.reply_to):
                        return  # fenced: the new epoch owns this action
                if waited >= self.ack_timeout:
                    self._nack(
                        key,
                        command.attempt,
                        f"no WriteComplete within {self.ack_timeout}s",
                        command.epoch,
                        reply_to=command.reply_to,
                    )
                    return
        finally:
            with self._ack_lock:
                self._write_acks.pop(
                    (key, command.epoch, command.attempt), None
                )

    def _stream_chunk(self, command: SendCommand) -> None:
        """Read the local chunk packet-by-packet and stream it out."""
        size = self.store.size(command.stripe_id)
        packet_size = min(command.packet_size, size)
        offsets = list(range(0, size, packet_size))
        if self.pipeline_depth > 0 and len(offsets) > 1:
            buffer: "queue.Queue" = queue.Queue(maxsize=self.pipeline_depth)

            def reader():
                for offset in offsets:
                    length = min(packet_size, size - offset)
                    buffer.put(
                        (
                            offset,
                            self.store.read_packet(
                                command.stripe_id, offset, length
                            ),
                        )
                    )

            reader_thread = threading.Thread(
                target=self._guard(reader),
                name=f"agent-{self.node_id}-read",
                daemon=True,
            )
            reader_thread.start()
            for _ in offsets:
                offset, payload = buffer.get()
                self._send_packet(command, offset, payload)
            reader_thread.join()
        else:
            # No pipelining: read everything, then send (64 MB packets
            # in Experiment B.1).
            packets = [
                (
                    offset,
                    self.store.read_packet(
                        command.stripe_id,
                        offset,
                        min(packet_size, size - offset),
                    ),
                )
                for offset in offsets
            ]
            for offset, payload in packets:
                self._send_packet(command, offset, payload)

    def _send_packet(
        self, command: SendCommand, offset: int, payload: bytes
    ) -> None:
        self._bytes_sent.inc(len(payload), node=self.node_id)
        self.network.send(
            self.node_id,
            command.destination,
            DataPacket(
                stripe_id=command.stripe_id,
                chunk_index=command.chunk_index,
                source=self.node_id,
                offset=offset,
                payload=payload,
                attempt=command.attempt,
                epoch=command.epoch,
                checksum=zlib.crc32(payload),
            ),
        )
