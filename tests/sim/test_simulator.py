"""Tests for the event-driven repair simulator."""

import pytest

from repro.cluster import StorageCluster
from repro.core.analysis import AnalyticalModel, BandwidthProfile
from repro.core.plan import (
    ChunkRepairAction,
    RepairMethod,
    RepairPlan,
    RepairRound,
    RepairScenario,
)
from repro.core.planner import (
    FastPRPlanner,
    MigrationOnlyPlanner,
    ReconstructionOnlyPlanner,
    profile_from_cluster,
)
from repro.sim.simulator import RepairSimulator, simulate_repair

CHUNK = 1000
BD = 100.0  # 10 s per chunk on disk
BN = 250.0  # 4 s per chunk on the wire


def make_cluster(num_nodes=12, stripes=8, n=5, k=3, standby=2, seed=2):
    cluster = StorageCluster.random(
        num_nodes,
        stripes,
        n,
        k,
        num_hot_standby=standby,
        seed=seed,
        disk_bandwidth=BD,
        network_bandwidth=BN,
        chunk_size=CHUNK,
    )
    return cluster


def single_action_plan(cluster, action, scenario=RepairScenario.SCATTERED):
    plan = RepairPlan(stf_node=0, scenario=scenario)
    round_ = RepairRound(index=0)
    if action.method is RepairMethod.MIGRATION:
        round_.migrations.append(action)
    else:
        round_.reconstructions.append(action)
    plan.rounds.append(round_)
    return plan


class TestSingleChunkTimes:
    def test_migration_matches_eq4(self):
        cluster = StorageCluster(
            6, disk_bandwidth=BD, network_bandwidth=BN, chunk_size=CHUNK
        )
        cluster.add_stripe(4, 2, [0, 1, 2, 3])
        action = ChunkRepairAction(0, 0, RepairMethod.MIGRATION, (0,), 4)
        result = simulate_repair(cluster, single_action_plan(cluster, action))
        # t_m = 10 + 4 + 10 = 24 s.
        assert result.total_time == pytest.approx(24.0)
        assert result.time_per_chunk == pytest.approx(24.0)

    def test_reconstruction_matches_eq5(self):
        cluster = StorageCluster(
            8, disk_bandwidth=BD, network_bandwidth=BN, chunk_size=CHUNK
        )
        cluster.add_stripe(4, 3, [0, 1, 2, 3])
        action = ChunkRepairAction(
            0, 0, RepairMethod.RECONSTRUCTION, (1, 2, 3), 5
        )
        result = simulate_repair(cluster, single_action_plan(cluster, action))
        # Reads parallel (10) + 3 serialized transfers (12) + write (10).
        assert result.total_time == pytest.approx(32.0)

    def test_traffic_accounting(self):
        cluster = StorageCluster(
            8, disk_bandwidth=BD, network_bandwidth=BN, chunk_size=CHUNK
        )
        cluster.add_stripe(4, 3, [0, 1, 2, 3])
        action = ChunkRepairAction(
            0, 0, RepairMethod.RECONSTRUCTION, (1, 2, 3), 5
        )
        result = simulate_repair(cluster, single_action_plan(cluster, action))
        assert result.bytes_read == 3 * CHUNK
        assert result.bytes_transferred == 3 * CHUNK
        assert result.bytes_written == CHUNK
        assert result.traffic_amplification == pytest.approx(3.0)


class TestPlanLevelBehavior:
    def test_migration_only_total_is_u_times_tm(self):
        cluster = make_cluster()
        cluster.node(0).mark_soon_to_fail()
        chunks = cluster.load_of(0)
        plan = MigrationOnlyPlanner().plan(cluster, 0)
        result = simulate_repair(cluster, plan)
        assert result.total_time == pytest.approx(chunks * 24.0, rel=0.01)
        assert result.traffic_amplification == pytest.approx(1.0)

    def test_reconstruction_amplifies_traffic_k_times(self):
        cluster = make_cluster()
        cluster.node(0).mark_soon_to_fail()
        plan = ReconstructionOnlyPlanner(seed=0).plan(cluster, 0)
        result = simulate_repair(cluster, plan)
        assert result.traffic_amplification == pytest.approx(3.0)

    def test_rounds_are_barriers(self):
        cluster = make_cluster()
        cluster.node(0).mark_soon_to_fail()
        plan = ReconstructionOnlyPlanner(seed=0).plan(cluster, 0)
        result = simulate_repair(cluster, plan)
        assert len(result.round_times) == plan.num_rounds
        assert sum(result.round_times) == pytest.approx(result.total_time)

    def test_fastpr_beats_migration_only(self):
        cluster = make_cluster(num_nodes=20, stripes=40, seed=5)
        stf = max(cluster.storage_node_ids(), key=cluster.load_of)
        cluster.node(stf).mark_soon_to_fail()
        fast = simulate_repair(
            cluster, FastPRPlanner(seed=0).plan(cluster, stf)
        )
        mig = simulate_repair(
            cluster, MigrationOnlyPlanner().plan(cluster, stf)
        )
        assert fast.total_time < mig.total_time

    def test_empty_plan(self):
        cluster = make_cluster()
        plan = RepairPlan(stf_node=0, scenario=RepairScenario.SCATTERED)
        result = simulate_repair(cluster, plan)
        assert result.total_time == 0.0
        assert result.time_per_chunk == 0.0

    def test_chunk_size_override(self):
        cluster = StorageCluster(
            6, disk_bandwidth=BD, network_bandwidth=BN, chunk_size=CHUNK
        )
        cluster.add_stripe(4, 2, [0, 1, 2, 3])
        action = ChunkRepairAction(0, 0, RepairMethod.MIGRATION, (0,), 4)
        plan = single_action_plan(cluster, action)
        half = RepairSimulator(cluster, chunk_size=CHUNK // 2).run(plan)
        assert half.total_time == pytest.approx(12.0)


class TestUtilization:
    def test_migration_saturates_stf_devices(self):
        cluster = make_cluster()
        cluster.node(0).mark_soon_to_fail()
        plan = MigrationOnlyPlanner().plan(cluster, 0)
        result = simulate_repair(cluster, plan)
        stf = result.utilization[0]
        # The STF node reads every chunk (10 s of 24 s per chunk) and
        # never ingests.
        assert stf.disk == pytest.approx(10.0 / 24.0, rel=0.02)
        assert stf.nic_out == pytest.approx(4.0 / 24.0, rel=0.05)
        assert stf.nic_in == 0.0

    def test_fractions_bounded(self):
        cluster = make_cluster(num_nodes=20, stripes=40, seed=5)
        stf = max(cluster.storage_node_ids(), key=cluster.load_of)
        cluster.node(stf).mark_soon_to_fail()
        result = simulate_repair(
            cluster, FastPRPlanner(seed=0).plan(cluster, stf)
        )
        for usage in result.utilization.values():
            for value in (usage.disk, usage.nic_in, usage.nic_out):
                assert 0.0 <= value <= 1.0 + 1e-9

    def test_empty_plan_no_utilization(self):
        cluster = make_cluster()
        plan = RepairPlan(stf_node=0, scenario=RepairScenario.SCATTERED)
        assert simulate_repair(cluster, plan).utilization == {}


class TestHeterogeneousBandwidth:
    def test_slow_helper_disk_slows_reconstruction(self):
        cluster = StorageCluster(
            8, disk_bandwidth=BD, network_bandwidth=BN, chunk_size=CHUNK
        )
        cluster.add_stripe(4, 3, [0, 1, 2, 3])
        action = ChunkRepairAction(
            0, 0, RepairMethod.RECONSTRUCTION, (1, 2, 3), 5
        )
        baseline = simulate_repair(
            cluster, single_action_plan(cluster, action)
        ).total_time
        cluster.node(2).disk_bandwidth = BD / 4  # 40 s read
        slowed = simulate_repair(
            cluster, single_action_plan(cluster, action)
        ).total_time
        # The fast helpers' transfers (8 s) hide inside the slow read
        # (40 s); the straggler's own transfer (4 s) and the write
        # (10 s) follow: 54 s vs the 32 s baseline.
        assert slowed == pytest.approx(40.0 + 4.0 + 10.0)
        assert slowed > baseline

    def test_slow_stf_nic_slows_migration(self):
        cluster = StorageCluster(
            6, disk_bandwidth=BD, network_bandwidth=BN, chunk_size=CHUNK
        )
        cluster.add_stripe(4, 2, [0, 1, 2, 3])
        action = ChunkRepairAction(0, 0, RepairMethod.MIGRATION, (0,), 4)
        cluster.node(0).network_bandwidth = BN / 2  # 8 s transfer
        result = simulate_repair(cluster, single_action_plan(cluster, action))
        assert result.total_time == pytest.approx(10.0 + 8.0 + 10.0)


class TestHotStandbyBottleneck:
    def test_more_standbys_faster(self):
        results = {}
        for h in (1, 3):
            cluster = make_cluster(num_nodes=16, stripes=30, standby=h, seed=4)
            stf = max(cluster.storage_node_ids(), key=cluster.load_of)
            cluster.node(stf).mark_soon_to_fail()
            plan = ReconstructionOnlyPlanner(
                scenario=RepairScenario.HOT_STANDBY, seed=0
            ).plan(cluster, stf)
            results[h] = simulate_repair(cluster, plan).time_per_chunk
        assert results[3] < results[1]
