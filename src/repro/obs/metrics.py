"""Zero-dependency metrics primitives: counters, gauges, histograms.

The paper's evaluation is a per-stage timing breakdown — where each
repair round spends its time (migration vs. reconstruction, disk vs.
network, Figs. 8-15).  :class:`MetricsRegistry` is the substrate that
makes those breakdowns observable on our runtime and simulator without
pulling in a metrics client library:

* :class:`Counter` — monotonically increasing totals (bytes moved,
  retries, journal records);
* :class:`Gauge` — point-in-time levels (inbox depth, queue depth);
* :class:`Histogram` — fixed-bucket distributions (throttle waits,
  decode times, round durations).

All three support optional labels (``counter.inc(5, node=3)``), are
thread-safe (the runtime increments from agent worker threads), and
are exposed two ways:

* :meth:`MetricsRegistry.to_dict` — a JSON document for
  ``--metrics-out`` files and the bench harness;
* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format, so a scraper (or a test) can parse the registry.

Metric names follow the Prometheus conventions: ``snake_case``, unit
suffixes (``_seconds``, ``_bytes``), ``_total`` for counters.  The
names used by the runtime are tabulated in DESIGN.md ("Observability").
"""

from __future__ import annotations

import json
import math
import re
import threading
from bisect import bisect_left
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

#: schema version of the JSON exposition document
METRICS_SCHEMA_VERSION = 1

#: default histogram buckets: latencies from 100us to ~2min (seconds)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: a frozen label set, usable as a dict key
LabelSet = Tuple[Tuple[str, str], ...]


class MetricError(ValueError):
    """Raised on invalid metric names, labels or type clashes."""


def _freeze_labels(labels: Dict[str, object]) -> LabelSet:
    for key in labels:
        if not _LABEL_RE.match(key):
            raise MetricError(f"invalid label name {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: LabelSet, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(labels) + list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Metric:
    """Base class: a named family of samples keyed by label set."""

    metric_type = "untyped"

    def __init__(self, name: str, help: str = ""):
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    def samples(self) -> List[dict]:
        """JSON-compatible samples (one per label set)."""
        raise NotImplementedError

    def render(self) -> List[str]:
        """Prometheus text-format lines for this family."""
        raise NotImplementedError

    def _header(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.metric_type}")
        return lines


class Counter(Metric):
    """A monotonically increasing value per label set."""

    metric_type = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: Dict[LabelSet, float] = {}

    def inc(self, amount: Union[int, float] = 1, **labels) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name} cannot decrease")
        key = _freeze_labels(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        """Current value for one label set (0 if never incremented)."""
        with self._lock:
            return self._values.get(_freeze_labels(labels), 0.0)

    def total(self) -> float:
        """Sum across every label set."""
        with self._lock:
            return sum(self._values.values())

    def samples(self) -> List[dict]:
        with self._lock:
            return [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._values.items())
            ]

    def render(self) -> List[str]:
        lines = self._header()
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            lines.append(
                f"{self.name}{_format_labels(key)} {_format_value(value)}"
            )
        return lines


class Gauge(Metric):
    """A value that can go up and down (queue depths, levels)."""

    metric_type = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: Dict[LabelSet, float] = {}

    def set(self, value: Union[int, float], **labels) -> None:
        with self._lock:
            self._values[_freeze_labels(labels)] = float(value)

    def inc(self, amount: Union[int, float] = 1, **labels) -> None:
        key = _freeze_labels(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: Union[int, float] = 1, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(_freeze_labels(labels), 0.0)

    def samples(self) -> List[dict]:
        with self._lock:
            return [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._values.items())
            ]

    def render(self) -> List[str]:
        lines = self._header()
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            lines.append(
                f"{self.name}{_format_labels(key)} {_format_value(value)}"
            )
        return lines


class Histogram(Metric):
    """Fixed-bucket distribution with cumulative Prometheus semantics.

    Buckets are upper bounds; an observation lands in every bucket
    whose bound is >= the value (cumulative), plus the implicit
    ``+Inf`` bucket.  ``sum`` and ``count`` are tracked per label set.
    """

    metric_type = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise MetricError(f"histogram {name} needs at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise MetricError(f"histogram {name} has duplicate buckets")
        if bounds and bounds[-1] == math.inf:
            bounds = bounds[:-1]  # +Inf is implicit
        self.buckets = bounds
        #: label set -> (per-bucket counts (non-cumulative) + inf slot, sum, count)
        self._series: Dict[LabelSet, List] = {}

    def observe(self, value: Union[int, float], **labels) -> None:
        key = _freeze_labels(labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = [[0] * (len(self.buckets) + 1), 0.0, 0]
                self._series[key] = series
            series[0][index] += 1
            series[1] += value
            series[2] += 1

    def count(self, **labels) -> int:
        with self._lock:
            series = self._series.get(_freeze_labels(labels))
            return 0 if series is None else series[2]

    def sum(self, **labels) -> float:
        with self._lock:
            series = self._series.get(_freeze_labels(labels))
            return 0.0 if series is None else series[1]

    def bucket_counts(self, **labels) -> Dict[float, int]:
        """Cumulative counts per upper bound (including ``inf``)."""
        with self._lock:
            series = self._series.get(_freeze_labels(labels))
            raw = [0] * (len(self.buckets) + 1) if series is None else series[0]
        cumulative: Dict[float, int] = {}
        running = 0
        for bound, count in zip(self.buckets, raw):
            running += count
            cumulative[bound] = running
        cumulative[math.inf] = running + raw[-1]
        return cumulative

    def samples(self) -> List[dict]:
        out = []
        with self._lock:
            items = sorted(self._series.items())
        for key, (raw, total, count) in items:
            running = 0
            buckets = []
            for bound, bucket_count in zip(self.buckets, raw):
                running += bucket_count
                buckets.append({"le": bound, "count": running})
            buckets.append({"le": "+Inf", "count": running + raw[-1]})
            out.append(
                {
                    "labels": dict(key),
                    "buckets": buckets,
                    "sum": total,
                    "count": count,
                }
            )
        return out

    def render(self) -> List[str]:
        lines = self._header()
        for sample in self.samples():
            key = tuple(sorted(sample["labels"].items()))
            for bucket in sample["buckets"]:
                le = bucket["le"]
                le_str = le if isinstance(le, str) else _format_value(le)
                lines.append(
                    f"{self.name}_bucket"
                    f"{_format_labels(key, [('le', le_str)])} "
                    f"{bucket['count']}"
                )
            lines.append(
                f"{self.name}_sum{_format_labels(key)} "
                f"{_format_value(sample['sum'])}"
            )
            lines.append(
                f"{self.name}_count{_format_labels(key)} {sample['count']}"
            )
        return lines


class MetricsRegistry:
    """Thread-safe registry of named metric families.

    ``counter``/``gauge``/``histogram`` are get-or-create: calling the
    same name twice returns the same instance (instrumented layers can
    share one registry without coordinating creation order), while
    re-registering a name as a different type raises
    :class:`MetricError`.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help=help, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls) or type(metric) is not cls:
                raise MetricError(
                    f"metric {name!r} already registered as "
                    f"{metric.metric_type}, not {cls.metric_type}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def __iter__(self) -> Iterable[Metric]:
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        return iter(metrics)

    # -- exposition ----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON exposition: every family with its samples."""
        return {
            "version": METRICS_SCHEMA_VERSION,
            "metrics": [
                {
                    "name": metric.name,
                    "type": metric.metric_type,
                    "help": metric.help,
                    "samples": metric.samples(),
                }
                for metric in self
            ],
        }

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for metric in self:
            lines.extend(metric.render())
        return "\n".join(lines) + ("\n" if lines else "")

    def save(self, path: Union[str, Path]) -> None:
        """Write the JSON exposition document to a file."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))


def parse_prometheus(text: str) -> Dict[str, Dict[str, float]]:
    """Minimal Prometheus text-format parser (for tests and tooling).

    Returns ``{sample_name: {serialized_labels: value}}``.  Raises
    :class:`MetricError` on lines that do not conform to the format —
    the exposition test feeds :meth:`MetricsRegistry.render_prometheus`
    through this to prove the output is scrapeable.
    """
    sample_re = re.compile(
        r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$"
    )
    label_re = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
    out: Dict[str, Dict[str, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        if line.startswith("#"):
            raise MetricError(f"malformed comment line: {line!r}")
        match = sample_re.match(line)
        if match is None:
            raise MetricError(f"malformed sample line: {line!r}")
        name, labels, raw = match.groups()
        if labels:
            body = labels[1:-1]
            parsed = label_re.findall(body)
            rebuilt = ",".join(f'{k}="{v}"' for k, v in parsed)
            if rebuilt != body.rstrip(","):
                raise MetricError(f"malformed labels in line: {line!r}")
        if raw == "+Inf":
            value = math.inf
        elif raw == "-Inf":
            value = -math.inf
        elif raw == "NaN":
            value = math.nan
        else:
            try:
                value = float(raw)
            except ValueError:
                raise MetricError(f"malformed value in line: {line!r}") from None
        out.setdefault(name, {})[labels or ""] = value
    return out
