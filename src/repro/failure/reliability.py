"""Window-of-vulnerability analysis.

The paper's case for minimizing repair time (Section II-B): "Minimizing
the repair time is critical for reducing the window of vulnerability,
especially when failures are correlated and subsequent failures appear
sooner after the first failure [Schroeder & Gibson]".  This module
makes that argument quantitative with a Monte-Carlo estimator:

given a repair plan and its (simulated or measured) timing, sample
correlated follow-up node failures and count how often a stripe loses
more chunks than its code tolerates before its STF chunk is repaired.

Comparing the estimator across planners shows the reliability payoff
of FastPR's shorter repairs, and comparing predictive vs reactive
start times shows the payoff of acting before the failure.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..cluster.chunk import NodeId
from ..cluster.cluster import StorageCluster
from ..core.plan import RepairPlan

#: seconds per year, for annualized failure rates
SECONDS_PER_YEAR = 365.25 * 24 * 3600


@dataclass(frozen=True)
class ReliabilityConfig:
    """Failure process parameters.

    Attributes:
        annual_failure_rate: per-node baseline AFR (field studies
            report 1-9%; default 4%).
        correlation_factor: hazard multiplier while a repair is in
            flight — correlated failures arrive sooner after a first
            failure (the paper cites Schroeder & Gibson); 1.0 disables
            correlation.
        trials: Monte-Carlo repetitions.
        seed: RNG seed.
    """

    annual_failure_rate: float = 0.04
    correlation_factor: float = 10.0
    trials: int = 2000
    seed: Optional[int] = None

    @property
    def hazard_per_second(self) -> float:
        """Exponential failure rate per node during the repair window."""
        base = self.annual_failure_rate / SECONDS_PER_YEAR
        return base * self.correlation_factor


@dataclass(frozen=True)
class VulnerabilityReport:
    """Monte-Carlo estimate of data-loss exposure during one repair."""

    loss_probability: float
    expected_lost_stripes: float
    trials: int
    repair_time: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"P(data loss)={self.loss_probability:.2e}, "
            f"E[lost stripes]={self.expected_lost_stripes:.2e} "
            f"over a {self.repair_time:.0f}s repair"
        )


def chunk_completion_times(
    plan: RepairPlan, round_times
) -> Dict[Tuple[int, int], float]:
    """Map each repaired chunk to the virtual time its round finishes.

    Rounds are barriers, so a chunk becomes safe when its round's last
    transfer completes.
    """
    if len(round_times) != len(plan.rounds):
        raise ValueError(
            f"{len(round_times)} round times for {len(plan.rounds)} rounds"
        )
    completion: Dict[Tuple[int, int], float] = {}
    elapsed = 0.0
    for round_, duration in zip(plan.rounds, round_times):
        elapsed += duration
        for action in round_.actions():
            completion[(action.stripe_id, action.chunk_index)] = elapsed
    return completion


def estimate_vulnerability(
    cluster: StorageCluster,
    plan: RepairPlan,
    round_times,
    stf_failure_time: float,
    config: ReliabilityConfig = ReliabilityConfig(),
) -> VulnerabilityReport:
    """Monte-Carlo data-loss probability during one repair.

    Args:
        cluster: metadata (stripe placements and tolerances).
        plan: the repair plan being executed from virtual time 0.
        round_times: per-round durations (from a simulator result).
        stf_failure_time: when the STF node actually dies, measured
            from repair start.  ``0`` models reactive repair (the node
            is already gone); a positive value models predictive repair
            with that much lead; ``inf`` models a false alarm.
        config: failure process parameters.

    A stripe loses data in a trial iff, at some point before its STF
    chunk's repair completes, more than ``n - k`` of its chunk holders
    have failed (the unrepaired STF chunk counts as failed once the STF
    node dies).
    """
    completion = chunk_completion_times(plan, round_times)
    if not completion:
        return VulnerabilityReport(0.0, 0.0, config.trials, 0.0)
    repair_time = max(completion.values())
    # Pre-compute, per affected stripe: completion time, other holders,
    # and the failure budget.
    stripes = []
    for (stripe_id, chunk_index), done_at in completion.items():
        stripe = cluster.stripe(stripe_id)
        others = [n for n in stripe.placement if n != plan.stf_node]
        stripes.append((done_at, others, stripe.n - stripe.k))
    rng = random.Random(config.seed)
    hazard = config.hazard_per_second
    all_nodes = sorted(
        {n for _, others, _ in stripes for n in others}
    )
    loss_trials = 0
    lost_stripes_total = 0
    for _ in range(config.trials):
        # Sample each relevant node's failure time once per trial.
        fail_at = {
            node: rng.expovariate(hazard) if hazard > 0 else math.inf
            for node in all_nodes
        }
        lost_here = 0
        for done_at, others, budget in stripes:
            failures = sum(1 for node in others if fail_at[node] < done_at)
            if stf_failure_time < done_at:
                failures += 1
            if failures > budget:
                lost_here += 1
        if lost_here:
            loss_trials += 1
            lost_stripes_total += lost_here
    return VulnerabilityReport(
        loss_probability=loss_trials / config.trials,
        expected_lost_stripes=lost_stripes_total / config.trials,
        trials=config.trials,
        repair_time=repair_time,
    )


def compare_predictive_vs_reactive(
    cluster: StorageCluster,
    plan: RepairPlan,
    round_times,
    lead_time: float,
    config: ReliabilityConfig = ReliabilityConfig(),
) -> Tuple[VulnerabilityReport, VulnerabilityReport]:
    """Exposure with ``lead_time`` of warning vs none at all.

    Returns ``(predictive, reactive)`` reports for the same plan and
    timing — the reliability argument for predictive repair in one
    call.
    """
    predictive = estimate_vulnerability(
        cluster, plan, round_times, stf_failure_time=lead_time, config=config
    )
    reactive = estimate_vulnerability(
        cluster, plan, round_times, stf_failure_time=0.0, config=config
    )
    return predictive, reactive
