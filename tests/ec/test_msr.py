"""Tests for the product-matrix MSR codec."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ec.codec import DecodeError, make_codec
from repro.ec.msr import MsrCodec


def random_chunks(k, size, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, size, dtype=np.uint8).tobytes() for _ in range(k)]


@pytest.fixture(scope="module")
def codec():
    return MsrCodec(6, 3)  # alpha=2, d=4


@pytest.fixture(scope="module")
def coded(codec):
    data = random_chunks(3, 128, seed=7)
    return data, codec.encode(data)


class TestConstruction:
    def test_parameters(self, codec):
        assert codec.alpha == 2
        assert codec.d == 4
        assert codec.message_symbols == 6

    def test_registered_scheme(self):
        assert isinstance(make_codec("msr(11,6)"), MsrCodec)

    def test_k_too_small(self):
        with pytest.raises(ValueError, match="k >= 3"):
            MsrCodec(6, 2)

    def test_n_too_small_for_d(self):
        with pytest.raises(ValueError, match="helpers"):
            MsrCodec(8, 5)  # needs n >= 9

    def test_storage_is_msr_point(self, codec):
        # Same per-node storage as RS (storage-optimal)...
        assert codec.storage_overhead == pytest.approx(2.0)
        # ...but repair traffic d/alpha = 2 chunks instead of k = 3.
        cost = codec.single_repair_cost()
        assert cost.helpers == 4
        assert cost.traffic_chunks == pytest.approx(2.0)
        assert cost.traffic_chunks < codec.k


class TestEncode:
    def test_chunk_sizes_preserved(self, codec, coded):
        data, chunks = coded
        assert len(chunks) == 6
        assert all(len(c) == 128 for c in chunks)

    def test_wrong_chunk_count(self, codec):
        with pytest.raises(ValueError):
            codec.encode(random_chunks(2, 64))

    def test_indivisible_chunk_size(self, codec):
        with pytest.raises(ValueError, match="divisible"):
            codec.encode(random_chunks(3, 65))

    def test_deterministic(self, codec):
        data = random_chunks(3, 64, seed=3)
        assert codec.encode(data) == codec.encode(data)


class TestReconstruction:
    def test_every_k_subset_recovers_data(self, codec, coded):
        data, chunks = coded
        for subset in itertools.combinations(range(6), 3):
            available = {i: chunks[i] for i in subset}
            assert codec.decode_data(available) == data, subset

    def test_decode_missing_nodes(self, codec, coded):
        _, chunks = coded
        out = codec.decode({1: chunks[1], 3: chunks[3], 5: chunks[5]}, [0, 2, 4])
        for i in (0, 2, 4):
            assert out[i] == chunks[i]

    def test_decode_present_node(self, codec, coded):
        _, chunks = coded
        out = codec.decode({0: chunks[0], 1: chunks[1], 2: chunks[2]}, [1])
        assert out[1] == chunks[1]

    def test_insufficient_chunks(self, codec, coded):
        _, chunks = coded
        with pytest.raises(DecodeError):
            codec.decode({0: chunks[0], 1: chunks[1]}, [5])

    def test_bad_index(self, codec, coded):
        _, chunks = coded
        with pytest.raises(ValueError):
            codec.decode({i: chunks[i] for i in range(3)}, [9])

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_roundtrip_random(self, seed):
        codec = MsrCodec(6, 3)
        data = random_chunks(3, 32, seed=seed)
        chunks = codec.encode(data)
        assert codec.decode_data({0: chunks[0], 3: chunks[3], 5: chunks[5]}) == data


class TestRepairByTransfer:
    def test_every_node_repairable(self, codec, coded):
        _, chunks = coded
        for lost in range(6):
            helpers = codec.repair_helpers(
                lost, [i for i in range(6) if i != lost]
            )
            symbols = {
                h: codec.repair_symbol(h, chunks[h], lost) for h in helpers
            }
            assert codec.repair_from_symbols(lost, symbols) == chunks[lost]

    def test_symbol_is_one_alpha_fraction(self, codec, coded):
        _, chunks = coded
        symbol = codec.repair_symbol(1, chunks[1], 0)
        assert len(symbol) == len(chunks[1]) // codec.alpha

    def test_total_repair_traffic_below_rs(self, codec, coded):
        _, chunks = coded
        helpers = codec.repair_helpers(0, list(range(1, 6)))
        total = sum(
            len(codec.repair_symbol(h, chunks[h], 0)) for h in helpers
        )
        rs_traffic = codec.k * len(chunks[0])
        assert total == 2 * len(chunks[0])
        assert total < rs_traffic

    def test_too_few_helpers(self, codec):
        with pytest.raises(DecodeError, match="helpers"):
            codec.repair_helpers(0, [1, 2, 3])

    def test_too_few_symbols(self, codec, coded):
        _, chunks = coded
        symbols = {1: codec.repair_symbol(1, chunks[1], 0)}
        with pytest.raises(DecodeError, match="repair symbols"):
            codec.repair_from_symbols(0, symbols)

    def test_self_help_rejected(self, codec, coded):
        _, chunks = coded
        with pytest.raises(DecodeError):
            codec.repair_symbol(0, chunks[0], 0)

    def test_any_d_helpers_work(self, codec, coded):
        _, chunks = coded
        for helpers in itertools.combinations(range(1, 6), 4):
            symbols = {
                h: codec.repair_symbol(h, chunks[h], 0) for h in helpers
            }
            assert codec.repair_from_symbols(0, symbols) == chunks[0]


class TestLargerParameters:
    def test_msr_11_6(self):
        codec = MsrCodec(11, 6)
        data = random_chunks(6, 6 * 5, seed=4)  # divisible by alpha=5
        chunks = codec.encode(data)
        assert codec.decode_data({i: chunks[i] for i in range(5, 11)}) == data
        helpers = codec.repair_helpers(2, [i for i in range(11) if i != 2])
        symbols = {h: codec.repair_symbol(h, chunks[h], 2) for h in helpers}
        assert codec.repair_from_symbols(2, symbols) == chunks[2]
        # Repair traffic: d/alpha = 10/5 = 2 chunks vs k = 6 for RS.
        assert codec.single_repair_cost().traffic_chunks == pytest.approx(2.0)
