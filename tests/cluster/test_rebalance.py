"""Tests for the background rebalancer."""

import pytest

from repro.cluster import Rebalancer, StorageCluster, placement_balance


def skewed_cluster():
    """All stripes pile their first chunks onto nodes 0-4."""
    cluster = StorageCluster(12)
    for _ in range(20):
        cluster.add_stripe(5, 3, [0, 1, 2, 3, 4])
    return cluster


class TestRebalancer:
    def test_reduces_spread(self):
        cluster = skewed_cluster()
        before = placement_balance(cluster)
        moves = Rebalancer(seed=0).run(cluster)
        after = placement_balance(cluster)
        assert moves, "skewed cluster should trigger moves"
        assert after < before

    def test_reaches_tolerance(self):
        cluster = skewed_cluster()
        Rebalancer(tolerance=1, seed=0).run(cluster)
        loads = [cluster.load_of(n) for n in cluster.storage_node_ids()]
        assert max(loads) - min(loads) <= 1

    def test_preserves_fault_tolerance(self):
        cluster = skewed_cluster()
        Rebalancer(seed=1).run(cluster)
        cluster.verify_fault_tolerance()

    def test_noop_on_balanced(self):
        cluster = StorageCluster(5)
        for start in range(5):
            cluster.add_stripe(3, 2, [(start + i) % 5 for i in range(3)])
        assert Rebalancer(seed=0).run(cluster) == []

    def test_max_moves_cap(self):
        cluster = skewed_cluster()
        moves = Rebalancer(max_moves=3, seed=0).run(cluster)
        assert len(moves) == 3

    def test_moves_are_replayable(self):
        cluster = skewed_cluster()
        reference = skewed_cluster()
        moves = Rebalancer(seed=2).run(cluster)
        for move in moves:
            reference.relocate_chunk(move.stripe_id, move.chunk_index, move.destination)
        for sid in range(reference.num_stripes):
            assert reference.stripe(sid).placement == cluster.stripe(sid).placement

    def test_bad_tolerance(self):
        with pytest.raises(ValueError):
            Rebalancer(tolerance=0)

    def test_conftest_fixture_balanced_enough(self, small_cluster):
        Rebalancer(seed=3).run(small_cluster)
        small_cluster.verify_fault_tolerance()
