"""Tests for repair pipelining (chained partial-sum reconstruction)."""

import pytest

from repro.cluster import StorageCluster
from repro.core.planner import FastPRPlanner, ReconstructionOnlyPlanner
from repro.ec import make_codec
from repro.runtime.testbed import EmulatedTestbed

CHUNK = 64 * 1024


@pytest.fixture(scope="module")
def rig(tmp_path_factory):
    cluster = StorageCluster.random(
        12,
        15,
        5,
        3,
        num_hot_standby=2,
        seed=91,
        disk_bandwidth=400e6,
        network_bandwidth=1e9,
        chunk_size=CHUNK,
    )
    cluster.node(0).mark_soon_to_fail()
    if cluster.load_of(0) == 0:
        pytest.skip("seed gave the STF node no chunks")
    codec = make_codec("rs(5,3)")
    testbed = EmulatedTestbed(
        cluster, codec, workdir=tmp_path_factory.mktemp("pipe"),
        packet_size=16 * 1024,
    )
    testbed.start()
    testbed.load_random_data(seed=92)
    yield cluster, testbed
    testbed.shutdown()


class TestPipelinedReconstruction:
    def test_bytes_verified(self, rig):
        cluster, testbed = rig
        plan = ReconstructionOnlyPlanner(seed=0, pipelined=True).plan(cluster, 0)
        assert all(a.pipelined for a in plan.actions())
        testbed.execute(plan)
        testbed.verify_plan(plan)

    def test_fastpr_with_pipelining(self, rig):
        cluster, testbed = rig
        plan = FastPRPlanner(seed=0, pipelined=True).plan(cluster, 0)
        testbed.execute(plan)
        testbed.verify_plan(plan)

    def test_same_traffic_different_topology(self, rig):
        """Pipelining moves the same bytes, but off the destination."""
        cluster, testbed = rig
        star = ReconstructionOnlyPlanner(seed=1).plan(cluster, 0)
        pipe = ReconstructionOnlyPlanner(seed=1, pipelined=True).plan(cluster, 0)
        r_star = testbed.execute(star)
        testbed.verify_plan(star)
        r_pipe = testbed.execute(pipe)
        testbed.verify_plan(pipe)
        assert r_pipe.bytes_transferred == r_star.bytes_transferred

    def test_pipelined_faster_when_network_is_the_bottleneck(
        self, tmp_path
    ):
        """With bn << bd the destination ingest dominates; the chain
        removes the k-fold fan-in and wins clearly."""
        cluster = StorageCluster.random(
            12,
            12,
            9,
            6,
            seed=93,
            disk_bandwidth=200e6,
            network_bandwidth=30e6,
            chunk_size=512 * 1024,
        )
        stf = max(cluster.storage_node_ids(), key=cluster.load_of)
        cluster.node(stf).mark_soon_to_fail()
        codec = make_codec("rs(9,6)")
        with EmulatedTestbed(
            cluster, codec, workdir=tmp_path, packet_size=64 * 1024
        ) as testbed:
            testbed.load_random_data(seed=94)
            star = ReconstructionOnlyPlanner(seed=0).plan(cluster, stf)
            pipe = ReconstructionOnlyPlanner(seed=0, pipelined=True).plan(
                cluster, stf
            )
            t_star = testbed.execute(star)
            testbed.verify_plan(star)
            t_pipe = testbed.execute(pipe)
            testbed.verify_plan(pipe)
        assert t_pipe.total_time < t_star.total_time * 0.8, (
            f"pipelined {t_pipe.total_time:.2f}s vs star "
            f"{t_star.total_time:.2f}s"
        )


class TestCostModelPipelined:
    def test_round_time_collapses(self):
        from repro.sim.cost_model import evaluate_plan

        cluster = StorageCluster.random(
            20, 60, 9, 6, seed=95, disk_bandwidth=100.0,
            network_bandwidth=250.0, chunk_size=1000,
        )
        stf = max(cluster.storage_node_ids(), key=cluster.load_of)
        cluster.node(stf).mark_soon_to_fail()
        star = ReconstructionOnlyPlanner(seed=0).plan(cluster, stf)
        pipe = ReconstructionOnlyPlanner(seed=0, pipelined=True).plan(
            cluster, stf
        )
        t_star = evaluate_plan(cluster, star)
        t_pipe = evaluate_plan(cluster, pipe)
        # Star: 2*c/bd + 6*c/bn = 44 s/round; pipelined: 2*c/bd + c/bn = 24.
        assert t_star.round_times[0] == pytest.approx(44.0)
        assert t_pipe.round_times[0] == pytest.approx(24.0)
        # Traffic accounting is unchanged.
        assert t_pipe.bytes_transferred == t_star.bytes_transferred
