"""repro — reproduction of "Fast Predictive Repair in Erasure-Coded Storage".

The package reimplements, in pure Python, the complete FastPR system
from Shen, Li and Lee (DSN 2019): the erasure-coding substrate, the
cluster model, the reconstruction-set and repair-scheduling algorithms,
the Section-III analytical model, a discrete-event simulator, an
emulated coordinator/agent testbed runtime, and a disk-failure
prediction substrate.

Quickstart::

    from repro import make_codec, StorageCluster, FastPRPlanner
    from repro import RepairSimulator          # discrete-event backend
    from repro import Testbed                  # emulated-runtime backend

The names exported here are the stable public API: planning
(``FastPRPlanner`` and friends), both execution backends
(``RepairSimulator`` and the emulated ``Testbed``/``Coordinator``/
``RepairAgent`` runtime), their shared configuration (``RuntimeConfig``,
``FaultPlan``), and the observability layer (``MetricsRegistry``,
``Tracer``).  Deeper module paths (``repro.runtime.transport``, ...)
are implementation detail and may move between releases;
``tests/test_api_surface.py`` pins this surface.

See ``examples/quickstart.py`` for a runnable tour.
"""

from .ec import (
    ErasureCodec,
    LocalReconstructionCodec,
    MsrCodec,
    ReedSolomonCodec,
    make_codec,
)
from .cluster import RackTopology, StorageCluster, Stripe, ChunkLocation
from .core import (
    AnalyticalModel,
    BandwidthProfile,
    BudgetTimeout,
    FastPRPlanner,
    HelperBudget,
    MigrationOnlyPlanner,
    ReconstructionOnlyPlanner,
    RepairPlan,
    RepairRound,
    RepairScenario,
    ShardMap,
    find_reconstruction_sets,
    split_plan,
    stagger_concurrent_plans,
)
from .gateway import (
    GatewayError,
    GatewayServer,
    ObjectClient,
    ObjectManifest,
    ObjectStore,
    TrafficArbiter,
)
from .net import ShmNetwork, TcpNetwork
from .obs import MetricsRegistry, Tracer
from .runtime import (
    Agent,
    Coordinator,
    CoordinatorCrash,
    DaemonCrash,
    DaemonCrashFault,
    DomainCrashFault,
    EmulatedTestbed,
    FaultPlan,
    MultiCoordinator,
    MultiRepairResult,
    RepairDaemon,
    RepairFailedError,
    RuntimeConfig,
    Scrubber,
    ShardFailedError,
    StorageClient,
    TakeoverEvent,
)
from .session import (
    PIPELINING_MODES,
    RepairSession,
    RepairSummary,
    apply_pipelining,
)
from .sim import (
    LifetimeConfig,
    LifetimeReport,
    RepairSimulator,
    ShardedRepairResult,
    TraceReplayProcess,
    WeibullFailureProcess,
    durability_study,
    run_lifetime,
    simulate_repair,
    simulate_sharded_repair,
)

# Stable aliases: the paper talks about "the testbed" and "repair
# agents"; the implementation classes carry their historical names.
Testbed = EmulatedTestbed
RepairAgent = Agent

__version__ = "1.0.0"

__all__ = [
    "ErasureCodec",
    "LocalReconstructionCodec",
    "MsrCodec",
    "ReedSolomonCodec",
    "make_codec",
    "RackTopology",
    "StorageCluster",
    "Stripe",
    "ChunkLocation",
    "AnalyticalModel",
    "BandwidthProfile",
    "BudgetTimeout",
    "FastPRPlanner",
    "HelperBudget",
    "MigrationOnlyPlanner",
    "ReconstructionOnlyPlanner",
    "RepairPlan",
    "RepairRound",
    "RepairScenario",
    "ShardMap",
    "find_reconstruction_sets",
    "split_plan",
    "stagger_concurrent_plans",
    # runtime backend
    "Agent",
    "Coordinator",
    "CoordinatorCrash",
    "DaemonCrash",
    "DaemonCrashFault",
    "DomainCrashFault",
    "EmulatedTestbed",
    "FaultPlan",
    "MultiCoordinator",
    "MultiRepairResult",
    "RepairAgent",
    "RepairDaemon",
    "RepairFailedError",
    "RuntimeConfig",
    "Scrubber",
    "ShardFailedError",
    "StorageClient",
    "TakeoverEvent",
    "ShmNetwork",
    "TcpNetwork",
    "Testbed",
    # unified repair-session front door
    "PIPELINING_MODES",
    "RepairSession",
    "RepairSummary",
    "apply_pipelining",
    # client-facing object gateway
    "GatewayError",
    "GatewayServer",
    "ObjectClient",
    "ObjectManifest",
    "ObjectStore",
    "TrafficArbiter",
    # simulator backend
    "LifetimeConfig",
    "LifetimeReport",
    "RepairSimulator",
    "ShardedRepairResult",
    "TraceReplayProcess",
    "WeibullFailureProcess",
    "durability_study",
    "run_lifetime",
    "simulate_repair",
    "simulate_sharded_repair",
    # observability
    "MetricsRegistry",
    "Tracer",
    "__version__",
]
