"""Workload builders for the paper's experiments.

Centralizes the default configuration of Section VI-A:

    M = 100 nodes, b_d = 100 MB/s, b_n = 1 Gb/s, RS(9,6),
    chunk size 64 MB, 1,000 randomly placed stripes, h = 3.

Builders return a cluster with one node already flagged soon-to-fail,
ready to be planned and simulated.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from ..cluster.cluster import StorageCluster
from ..core.analysis import gbit_per_s, mb_per_s, mib


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of the paper's simulation experiments."""

    num_nodes: int = 100
    num_stripes: int = 1000
    n: int = 9
    k: int = 6
    num_hot_standby: int = 3
    chunk_size: int = mib(64)
    disk_bandwidth: float = mb_per_s(100)
    network_bandwidth: float = gbit_per_s(1)
    seed: Optional[int] = None

    def with_(self, **kwargs) -> "SimulationConfig":
        from dataclasses import replace

        return replace(self, **kwargs)


#: Paper defaults (Section VI-A).
PAPER_SIM_CONFIG = SimulationConfig()


def build_cluster(config: SimulationConfig) -> StorageCluster:
    """Cluster with randomly placed stripes per the configuration."""
    return StorageCluster.random(
        num_nodes=config.num_nodes,
        num_stripes=config.num_stripes,
        n=config.n,
        k=config.k,
        num_hot_standby=config.num_hot_standby,
        seed=config.seed,
        disk_bandwidth=config.disk_bandwidth,
        network_bandwidth=config.network_bandwidth,
        chunk_size=config.chunk_size,
    )


def build_cluster_with_stf(
    config: SimulationConfig,
) -> Tuple[StorageCluster, int]:
    """Cluster plus a randomly chosen STF node (already flagged).

    The STF node is drawn among the nodes that actually store chunks,
    so every run repairs a non-trivial chunk set.
    """
    cluster = build_cluster(config)
    rng = random.Random(None if config.seed is None else config.seed + 7919)
    candidates = [
        node_id
        for node_id in cluster.storage_node_ids()
        if cluster.load_of(node_id) > 0
    ]
    if not candidates:
        raise ValueError("no node stores any chunk; increase num_stripes")
    stf_node = rng.choice(candidates)
    cluster.node(stf_node).mark_soon_to_fail()
    return cluster, stf_node


def fixed_stf_chunk_count(
    config: SimulationConfig, stf_chunks: int, stf_node: int = 0
) -> Tuple[StorageCluster, int]:
    """Cluster where the STF node stores exactly ``stf_chunks`` chunks.

    Mirrors the EC2 testbed setup (Section VI-B): "the number of chunks
    in the STF node being repaired is fixed as 50 chunks in each
    experimental run for consistent benchmarking".  Stripes touching
    the STF node are placed through it deliberately; the rest avoid it.
    """
    cluster = StorageCluster(
        config.num_nodes,
        num_hot_standby=config.num_hot_standby,
        disk_bandwidth=config.disk_bandwidth,
        network_bandwidth=config.network_bandwidth,
        chunk_size=config.chunk_size,
    )
    rng = random.Random(config.seed)
    node_ids = cluster.storage_node_ids()
    others = [nid for nid in node_ids if nid != stf_node]
    if len(others) < config.n:
        raise ValueError("cluster too small for the stripe width")
    for i in range(config.num_stripes):
        if i < stf_chunks:
            placement = [stf_node] + rng.sample(others, config.n - 1)
            rng.shuffle(placement)
        else:
            placement = rng.sample(others, config.n)
        cluster.add_stripe(config.n, config.k, placement)
    if cluster.load_of(stf_node) != stf_chunks:
        raise AssertionError("STF chunk count construction failed")
    cluster.node(stf_node).mark_soon_to_fail()
    return cluster, stf_node
