"""Tests for the FastPR planner and its baselines."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import StorageCluster
from repro.core.analysis import BandwidthProfile
from repro.core.plan import RepairMethod, RepairScenario
from repro.core.planner import (
    FastPRPlanner,
    MigrationOnlyPlanner,
    ReconstructionOnlyPlanner,
    apply_plan,
    model_for,
    plan_predictive_repair,
    profile_from_cluster,
)


class TestModelFor:
    def test_profile_from_cluster(self, small_cluster):
        profile = profile_from_cluster(small_cluster)
        assert profile.chunk_size == small_cluster.chunk_size
        assert profile.disk_bandwidth == small_cluster.disk_bandwidth

    def test_scattered_model(self, small_cluster):
        model = model_for(small_cluster, RepairScenario.SCATTERED, k=3)
        assert not model.is_hot_standby
        assert model.num_nodes == 12

    def test_hot_standby_model(self, small_cluster):
        model = model_for(small_cluster, RepairScenario.HOT_STANDBY, k=3)
        assert model.hot_standby == 3

    def test_hot_standby_without_standbys(self):
        cluster = StorageCluster(6)
        with pytest.raises(ValueError, match="standby"):
            model_for(cluster, RepairScenario.HOT_STANDBY, k=3)


class TestFastPRPlanner:
    def test_valid_plan(self, stf_cluster):
        cluster, stf = stf_cluster
        plan = FastPRPlanner(seed=0).plan(cluster, stf)
        plan.validate(cluster)
        assert plan.total_chunks == cluster.load_of(stf)
        assert plan.stf_node == stf

    def test_couples_both_methods(self, medium_cluster):
        stf = max(medium_cluster.storage_node_ids(), key=medium_cluster.load_of)
        medium_cluster.node(stf).mark_soon_to_fail()
        plan = FastPRPlanner(seed=0).plan(medium_cluster, stf)
        assert plan.migrated_chunks > 0
        assert plan.reconstructed_chunks > 0

    def test_hot_standby_plan(self, stf_cluster):
        cluster, stf = stf_cluster
        plan = FastPRPlanner(
            scenario=RepairScenario.HOT_STANDBY, seed=0
        ).plan(cluster, stf)
        plan.validate(cluster)
        destinations = {a.destination for a in plan.actions()}
        assert destinations <= set(cluster.hot_standby_ids())

    def test_empty_stf_node(self):
        cluster = StorageCluster(6)
        plan = FastPRPlanner().plan(cluster, 0)
        assert plan.total_chunks == 0
        assert plan.rounds == []

    def test_explicit_chunk_subset(self, stf_cluster):
        cluster, stf = stf_cluster
        chunks = cluster.chunks_on_node(stf)[:4]
        plan = FastPRPlanner(seed=0).plan(cluster, stf, chunks=chunks)
        plan.validate(cluster, stf_chunks=chunks)
        assert plan.total_chunks == 4

    def test_records_algorithm1_stats(self, stf_cluster):
        cluster, stf = stf_cluster
        planner = FastPRPlanner(seed=0)
        planner.plan(cluster, stf)
        assert planner.last_stats is not None
        assert planner.last_stats.match_calls > 0

    def test_deterministic_with_seed(self, stf_cluster):
        cluster, stf = stf_cluster
        plan_a = FastPRPlanner(seed=3).plan(cluster, stf)
        plan_b = FastPRPlanner(seed=3).plan(cluster, stf)
        keys = lambda p: [
            (a.stripe_id, a.method.value, a.destination) for a in p.actions()
        ]
        assert keys(plan_a) == keys(plan_b)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 2**16))
    def test_random_clusters_valid_plans(self, seed):
        cluster = StorageCluster.random(
            16, 50, 6, 4, num_hot_standby=2, seed=seed
        )
        stf = max(cluster.storage_node_ids(), key=cluster.load_of)
        cluster.node(stf).mark_soon_to_fail()
        for scenario in (RepairScenario.SCATTERED, RepairScenario.HOT_STANDBY):
            plan = FastPRPlanner(scenario=scenario, seed=seed).plan(cluster, stf)
            plan.validate(cluster)


class TestBaselinePlanners:
    def test_reconstruction_only(self, stf_cluster):
        cluster, stf = stf_cluster
        plan = ReconstructionOnlyPlanner(seed=0).plan(cluster, stf)
        plan.validate(cluster)
        assert plan.migrated_chunks == 0
        assert plan.reconstructed_chunks == cluster.load_of(stf)

    def test_migration_only(self, stf_cluster):
        cluster, stf = stf_cluster
        plan = MigrationOnlyPlanner().plan(cluster, stf)
        plan.validate(cluster)
        assert plan.reconstructed_chunks == 0
        assert plan.num_rounds == 1
        for action in plan.actions():
            assert action.method is RepairMethod.MIGRATION
            assert action.sources == (stf,)

    def test_fastpr_no_more_rounds_than_reconstruction(self, medium_cluster):
        stf = max(medium_cluster.storage_node_ids(), key=medium_cluster.load_of)
        medium_cluster.node(stf).mark_soon_to_fail()
        fast = FastPRPlanner(seed=1).plan(medium_cluster, stf)
        recon = ReconstructionOnlyPlanner(seed=1).plan(medium_cluster, stf)
        assert fast.num_rounds <= recon.num_rounds


class TestApplyPlan:
    def test_empties_stf_node(self, stf_cluster):
        cluster, stf = stf_cluster
        plan = FastPRPlanner(seed=0).plan(cluster, stf)
        apply_plan(cluster, plan)
        assert cluster.load_of(stf) == 0
        cluster.verify_fault_tolerance()

    def test_decommission_after_apply(self, stf_cluster):
        cluster, stf = stf_cluster
        apply_plan(cluster, FastPRPlanner(seed=0).plan(cluster, stf))
        cluster.decommission(stf)
        assert cluster.node(stf).is_failed


class TestPlanPredictiveRepair:
    def test_no_stf_nodes(self, small_cluster):
        assert plan_predictive_repair(small_cluster) == []

    def test_single_stf_uses_fastpr(self, stf_cluster):
        cluster, stf = stf_cluster
        plans = plan_predictive_repair(cluster, seed=0)
        assert len(plans) == 1
        assert plans[0].stf_node == stf
        # FastPR couples methods when parallelism allows; at minimum the
        # plan is valid.
        plans[0].validate(cluster)

    def test_multi_stf_falls_back_to_reactive(self, small_cluster):
        small_cluster.node(0).mark_soon_to_fail()
        small_cluster.node(1).mark_soon_to_fail()
        plans = plan_predictive_repair(small_cluster)
        assert len(plans) == 2
        for plan in plans:
            assert plan.migrated_chunks == 0


class TestUniformKEnforcement:
    def test_mixed_codes_rejected(self):
        cluster = StorageCluster(10)
        cluster.add_stripe(5, 3, [0, 1, 2, 3, 4])
        cluster.add_stripe(5, 2, [0, 5, 6, 7, 8])
        with pytest.raises(ValueError, match="uniform"):
            FastPRPlanner().plan(cluster, 0)
