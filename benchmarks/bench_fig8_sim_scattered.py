"""Figure 8 / Experiment A.1: simulated scattered repair.

Paper claims reproduced here:

* migration-only is the worst approach everywhere (STF bottleneck);
* FastPR beats (or ties) reconstruction-only at every configuration,
  and the margin widens for small M and large (n,k);
* FastPR lands close to the analytical optimum (paper: +11.4% on
  average; we assert a generous envelope since our placements differ);
* for RS(16,12) FastPR cuts migration-only by >40% and
  reconstruction-only by >20% (paper: 62.7% / 40.6%).
"""

from conftest import run_once

from repro.bench.experiments import fig8_sim_scattered
from repro.bench.harness import reduction

RUNS = 2


def test_fig8_sim_scattered(benchmark, save_result):
    exp = run_once(benchmark, fig8_sim_scattered, runs=RUNS)
    save_result(exp)

    for panel in exp.panels:
        fastpr = panel.values_of("fastpr")
        recon = panel.values_of("reconstruction")
        mig = panel.values_of("migration")
        opt = panel.values_of("optimum")
        for i in range(len(fastpr)):
            assert mig[i] >= max(fastpr[i], recon[i]) * 0.99, (
                f"{panel.title}@{panel.xticks[i]}: migration-only should "
                "be the slowest"
            )
            assert fastpr[i] <= recon[i] * 1.05, (
                f"{panel.title}@{panel.xticks[i]}: FastPR should not lose "
                "to reconstruction-only"
            )
            assert fastpr[i] >= opt[i] * 0.95, "optimum is a lower bound"

    # FastPR close to optimum at the default configuration (M=100).
    panel_a = exp.panel("Fig 8(a) — varying M")
    idx = panel_a.xticks.index("100")
    ratio = panel_a.values_of("fastpr")[idx] / panel_a.values_of("optimum")[idx]
    assert ratio < 1.6, f"FastPR {ratio:.2f}x optimum at M=100"

    # RS(16,12) reductions (paper: 62.7% vs migration, 40.6% vs recon).
    panel_b = exp.panel("Fig 8(b) — varying RS(n,k)")
    idx = panel_b.xticks.index("RS(16,12)")
    vs_migration = reduction(
        panel_b.values_of("migration")[idx], panel_b.values_of("fastpr")[idx]
    )
    vs_recon = reduction(
        panel_b.values_of("reconstruction")[idx],
        panel_b.values_of("fastpr")[idx],
    )
    assert vs_migration > 0.40
    assert vs_recon > 0.15
