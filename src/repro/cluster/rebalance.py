"""Background chunk rebalancing.

The paper assumes the cluster "periodically rebalances the chunk
distribution in the background" after repairs skew it (Section II-B,
assumptions).  :class:`Rebalancer` implements a simple greedy mover:
repeatedly shift one chunk from the most-loaded node to the
least-loaded node that can legally accept it (no two chunks of a
stripe on one node), until the load spread is within tolerance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .chunk import NodeId, StripeId
from .cluster import StorageCluster


@dataclass(frozen=True)
class RebalanceMove:
    """One chunk movement performed by the rebalancer."""

    stripe_id: StripeId
    chunk_index: int
    source: NodeId
    destination: NodeId


class Rebalancer:
    """Greedy load rebalancer over a :class:`StorageCluster`.

    Args:
        tolerance: stop once ``max_load - min_load <= tolerance``.
        max_moves: safety cap on the number of chunk movements.
        seed: randomizes which chunk is moved among equals.
    """

    def __init__(
        self,
        tolerance: int = 1,
        max_moves: int = 100_000,
        seed: Optional[int] = None,
    ):
        if tolerance < 1:
            raise ValueError("tolerance must be >= 1")
        self.tolerance = tolerance
        self.max_moves = max_moves
        self._rng = random.Random(seed)

    def run(self, cluster: StorageCluster) -> List[RebalanceMove]:
        """Rebalance in place; return the moves performed."""
        moves: List[RebalanceMove] = []
        while len(moves) < self.max_moves:
            move = self._next_move(cluster)
            if move is None:
                break
            cluster.relocate_chunk(move.stripe_id, move.chunk_index, move.destination)
            moves.append(move)
        return moves

    def _next_move(self, cluster: StorageCluster) -> Optional[RebalanceMove]:
        healthy = cluster.healthy_storage_nodes()
        if len(healthy) < 2:
            return None
        loads: List[Tuple[int, NodeId]] = sorted(
            (cluster.load_of(nid), nid) for nid in healthy
        )
        min_load, _ = loads[0]
        max_load, busiest = loads[-1]
        if max_load - min_load <= self.tolerance:
            return None
        # Try to hand one of the busiest node's chunks to the least
        # loaded node that does not already hold a chunk of the stripe.
        chunks = cluster.chunks_on_node(busiest)
        self._rng.shuffle(chunks)
        for load, candidate in loads[:-1]:
            if load >= max_load - self.tolerance:
                break
            for chunk in chunks:
                stripe = cluster.stripe(chunk.stripe_id)
                if not stripe.stores_on(candidate):
                    return RebalanceMove(
                        chunk.stripe_id, chunk.chunk_index, busiest, candidate
                    )
        return None
