"""Transport conformance: one contract, three backends.

Every test in :class:`TestTransportContract` runs against the
in-memory fabric, a loopback-wired :class:`~repro.net.TcpNetwork`
(each node registered as a peer of the network's own listen port, so
every message crosses a real socket) and a loopback-wired
:class:`~repro.net.ShmNetwork` (each node registered as a peer of the
network's own ring, so every message crosses shared memory).  The
runtime must not be able to tell the backends apart: ordering, payload
fidelity, backpressure, silent-drop and error semantics all match.

Backend-only behaviors (frame rejection, reconnection, coordinator
kill/resume across the wire path) are exercised in the backend-specific
classes below.
"""

import socket
import threading
import time
import zlib

import pytest

from repro.cluster import StorageCluster
from repro.core.planner import FastPRPlanner
from repro.ec import make_codec
from repro.net import ShmNetwork, TcpNetwork, shm_available
from repro.obs import MetricsRegistry
from repro.runtime import (
    COORDINATOR_ID,
    CoordinatorCrash,
    RuntimeConfig,
    Scrubber,
)
from repro.runtime.agent import Agent
from repro.runtime.datanode import ChunkStore
from repro.gateway import GATEWAY_ID
from repro.runtime.messages import (
    ACK_FAILED,
    ChunkRead,
    ChunkReadReply,
    ChunkWrite,
    ChunkWriteReply,
    DataPacket,
    GetRequest,
    Heartbeat,
    InventoryQuery,
    InventoryReply,
    Ping,
    Pong,
    ReceiveCommand,
    RepairAck,
    SlicePacket,
    SliceReport,
    StatReply,
)
from repro.runtime.testbed import EmulatedTestbed
from repro.runtime.throttle import RateLimiter

#: tight timings so fencing/recovery happen in test time
FAST = RuntimeConfig(
    ack_timeout=2.0,
    join_timeout=5.0,
    min_deadline=0.8,
    backoff_base=0.05,
    backoff_cap=0.2,
    probe_timeout=0.5,
    heartbeat_interval=0.1,
    poll_interval=0.05,
    journal_fsync="never",
    inventory_timeout=2.0,
)


class Backend:
    """Builds one transport backend and wires its topology."""

    def __init__(self, kind: str):
        self.kind = kind
        self.networks = []

    def make(self, **kwargs):
        if self.kind == "tcp":
            net = TcpNetwork(**kwargs)
        elif self.kind == "shm":
            net = ShmNetwork(**kwargs)
        else:
            from repro.runtime.transport import Network

            net = Network(**kwargs)
        self.networks.append(net)
        return net

    def wire(self, net, node_ids):
        """Make ``node_ids`` reachable; on tcp/shm, across the wire."""
        if self.kind == "tcp":
            host, port = net.listen()
            for node_id in node_ids:
                net.add_peer(node_id, host, port)
        elif self.kind == "shm":
            name = net.listen()
            for node_id in node_ids:
                net.add_peer(node_id, name)

    def close(self):
        for net in self.networks:
            if isinstance(net, (TcpNetwork, ShmNetwork)):
                net.close()


@pytest.fixture(
    params=[
        "memory",
        "tcp",
        pytest.param(
            "shm",
            marks=pytest.mark.skipif(
                not shm_available(), reason="needs POSIX shm + flock"
            ),
        ),
    ]
)
def backend(request):
    b = Backend(request.param)
    yield b
    b.close()


def drain(endpoint, count, timeout=10.0, skip=(Heartbeat,)):
    """Pull ``count`` non-heartbeat messages off an inbox."""
    got = []
    deadline = time.monotonic() + timeout
    while len(got) < count:
        remaining = deadline - time.monotonic()
        assert remaining > 0, f"only {len(got)}/{count} messages arrived"
        message = endpoint.inbox.get(timeout=remaining)
        if not isinstance(message, skip):
            got.append(message)
    return got


class TestTransportContract:
    def test_per_peer_ordering(self, backend):
        net = backend.make()
        net.attach(0, None)
        net.attach(1, None)
        backend.wire(net, [1])
        for i in range(100):
            net.send(0, 1, Pong(node_id=0, nonce=i))
        got = drain(net.endpoint(1), 100)
        assert [m.nonce for m in got] == list(range(100))

    def test_data_payload_bit_exact_and_counted(self, backend):
        net = backend.make()
        net.attach(0, 1e9)
        net.attach(1, 1e9)
        backend.wire(net, [1])
        payload = bytes(range(256)) * 20
        net.send(0, 1, DataPacket(3, 1, 0, 0, payload, attempt=2, epoch=1))
        (got,) = drain(net.endpoint(1), 1)
        assert got.payload == payload
        assert (got.stripe_id, got.chunk_index, got.attempt) == (3, 1, 2)
        assert net.bytes_transferred == len(payload)

    def test_bounded_inbox_backpressures_without_loss(self, backend):
        net = backend.make(inbox_capacity=4)
        net.attach(0, None)
        net.attach(1, None)
        backend.wire(net, [1])
        endpoint = net.endpoint(1)
        assert endpoint.inbox.maxsize == 4
        got, overflow = [], []

        def consume():
            for _ in range(32):
                if endpoint.inbox.qsize() > 4:
                    overflow.append(endpoint.inbox.qsize())
                got.append(endpoint.inbox.get(timeout=10.0))
                time.sleep(0.01)  # slower than the sender

        consumer = threading.Thread(target=consume)
        consumer.start()
        for i in range(32):
            net.send(0, 1, Pong(node_id=0, nonce=i))
        consumer.join(timeout=15.0)
        assert not consumer.is_alive()
        assert [m.nonce for m in got] == list(range(32))
        assert not overflow  # the bound held the whole time

    def test_detached_destination_swallows_silently(self, backend):
        net = backend.make()
        net.attach(0, None)
        net.attach(1, None)
        backend.wire(net, [1])
        net.detach(1)
        net.send(0, 1, Ping(nonce=1))  # must not raise

    def test_unknown_destination_raises(self, backend):
        net = backend.make()
        net.attach(0, None)
        with pytest.raises(KeyError):
            net.send(0, 99, Ping(nonce=1))

    def test_net_metrics_emitted(self, backend):
        registry = MetricsRegistry()
        net = backend.make(metrics=registry)
        net.attach(0, 1e9)
        net.attach(1, 1e9)
        backend.wire(net, [1])
        net.send(0, 1, DataPacket(0, 0, 0, 0, b"x" * 100))
        net.send(0, 1, Ping(nonce=1))
        drain(net.endpoint(1), 2)
        assert net.net.frames_sent.total() >= 2
        assert net.net.frames_received.total() >= 2
        assert net.net.bytes_sent.total() == 100

    def test_slice_packet_survives_backend_bit_exact(self, backend):
        # SlicePacket is a DataPacket specialization; every backend
        # must carry the slice-protocol fields and the payload intact.
        net = backend.make()
        net.attach(0, 1e9)
        net.attach(1, 1e9)
        backend.wire(net, [1])
        payload = bytes(range(256)) * 16
        net.send(
            0,
            1,
            SlicePacket(
                stripe_id=3,
                chunk_index=1,
                source=0,
                offset=4096,
                payload=payload,
                attempt=2,
                epoch=1,
                checksum=zlib.crc32(payload),
                slice_index=1,
                num_slices=4,
                chain_pos=2,
            ),
        )
        (got,) = drain(net.endpoint(1), 1)
        assert isinstance(got, SlicePacket)
        assert got.payload == payload
        # The memory fabric carries the per-packet checksum verbatim;
        # the wire backends drop it (the frame CRC covers meta+payload)
        # — either way the payload integrity contract holds.
        assert got.checksum in (None, zlib.crc32(payload))
        assert (got.slice_index, got.num_slices, got.chain_pos) == (1, 4, 2)
        assert (got.stripe_id, got.chunk_index, got.offset) == (3, 1, 4096)
        assert (got.attempt, got.epoch) == (2, 1)
        assert net.bytes_transferred == len(payload)

    def test_slice_stream_ordered_per_peer(self, backend):
        # A chain hop consumes upstream partial sums strictly in slice
        # order; the transport must never reorder them.
        net = backend.make()
        net.attach(0, 1e9)
        net.attach(1, 1e9)
        backend.wire(net, [1])
        num_slices = 32
        for index in range(num_slices):
            payload = bytes([index]) * 512
            net.send(
                0,
                1,
                SlicePacket(
                    stripe_id=0,
                    chunk_index=0,
                    source=0,
                    offset=index * 512,
                    payload=payload,
                    checksum=zlib.crc32(payload),
                    slice_index=index,
                    num_slices=num_slices,
                ),
            )
        got = drain(net.endpoint(1), num_slices)
        assert [p.slice_index for p in got] == list(range(num_slices))
        assert all(p.payload == bytes([p.slice_index]) * 512 for p in got)

    def test_slice_report_roundtrip(self, backend):
        # The destination's per-slice progress stream reaches the
        # coordinator with its timing intact.
        net = backend.make()
        net.attach(0, None)
        net.attach(COORDINATOR_ID, None)
        backend.wire(net, [COORDINATOR_ID])
        net.send(
            0,
            COORDINATOR_ID,
            SliceReport(
                stripe_id=7,
                chunk_index=2,
                node_id=0,
                slice_index=3,
                num_slices=8,
                attempt=1,
                epoch=2,
                elapsed=0.125,
            ),
        )
        (got,) = drain(net.endpoint(COORDINATOR_ID), 1)
        assert isinstance(got, SliceReport)
        assert got.key == (7, 2)
        assert (got.node_id, got.slice_index, got.num_slices) == (0, 3, 8)
        assert (got.attempt, got.epoch) == (1, 2)
        assert got.elapsed == pytest.approx(0.125)

    def test_epoch_fencing_nacks_stale_commands(self, backend, tmp_path):
        net = backend.make()
        net.attach(COORDINATOR_ID, None)
        net.attach(1, 1e9)
        backend.wire(net, [1, COORDINATOR_ID])
        store = ChunkStore(tmp_path / "n1", 1, RateLimiter(1e9))
        agent = Agent(1, store, net, coordinator_id=COORDINATOR_ID,
                      config=FAST)
        agent.start()
        try:
            coord = net.endpoint(COORDINATOR_ID)
            net.send(COORDINATOR_ID, 1, InventoryQuery(epoch=5, nonce=1))
            (reply,) = drain(coord, 1)
            assert isinstance(reply, InventoryReply)
            assert reply.epoch == 5
            # An older coordinator's mutating command must bounce.
            net.send(
                COORDINATOR_ID, 1,
                ReceiveCommand(0, 0, 64, 16, sources={2: 1}, epoch=3),
            )
            (ack,) = drain(coord, 1)
            assert isinstance(ack, RepairAck)
            assert ack.status == ACK_FAILED
            assert "stale epoch" in ack.detail
            assert not store.stripes()  # nothing mutated
        finally:
            agent.stop()

    # -- gateway wire messages (type codes 15-27) ----------------------

    def test_gateway_chunk_transfer_checksum_contract(self, backend):
        # ChunkWrite/ChunkReadReply are DataPacket subclasses: payload
        # must cross every backend bit-exact, and receivers must honor
        # the checksum contract — the memory fabric hands the attached
        # CRC through verbatim, while tcp/shm verify it at the frame
        # level and strip the field to None.  Gateway code treats
        # ``checksum is None`` as transport-verified.
        net = backend.make()
        net.attach(GATEWAY_ID, 1e9)
        net.attach(1, 1e9)
        backend.wire(net, [1, GATEWAY_ID])
        payload = bytes(range(256)) * 17
        net.send(GATEWAY_ID, 1, ChunkWrite(
            stripe_id=9, chunk_index=4, source=GATEWAY_ID, offset=0,
            payload=payload, checksum=zlib.crc32(payload),
            nonce=31, reply_to=GATEWAY_ID,
        ))
        (got,) = drain(net.endpoint(1), 1)
        assert isinstance(got, ChunkWrite)
        assert bytes(got.payload) == payload
        assert (got.stripe_id, got.chunk_index) == (9, 4)
        assert (got.nonce, got.reply_to) == (31, GATEWAY_ID)
        if backend.kind == "memory":
            assert got.checksum == zlib.crc32(payload)
        else:
            assert got.checksum is None
        net.send(1, GATEWAY_ID, ChunkReadReply(
            stripe_id=9, chunk_index=4, source=1, offset=0,
            payload=payload, checksum=zlib.crc32(payload), nonce=32,
        ))
        (reply,) = drain(net.endpoint(GATEWAY_ID), 1)
        assert isinstance(reply, ChunkReadReply)
        assert bytes(reply.payload) == payload
        assert reply.ok and reply.nonce == 32
        assert reply.checksum in (None, zlib.crc32(payload))

    def test_gateway_control_messages_cross_backend(self, backend):
        # Control-plane object messages (no payload): field fidelity,
        # including the stripes-tuple coercion on StatReply.
        net = backend.make()
        net.attach(GATEWAY_ID, None)
        net.attach(1, None)
        backend.wire(net, [1, GATEWAY_ID])
        net.send(1, GATEWAY_ID, GetRequest(
            key="videos/a b.mp4", nonce=7, reply_to=1
        ))
        (request,) = drain(net.endpoint(GATEWAY_ID), 1)
        assert isinstance(request, GetRequest)
        assert (request.key, request.nonce, request.reply_to) == (
            "videos/a b.mp4", 7, 1
        )
        net.send(GATEWAY_ID, 1, StatReply(
            key="videos/a b.mp4", nonce=7, size=123456, chunk_size=4096,
            scheme="rs(9,6)", stripes=(5, 6, 7),
        ))
        (stat,) = drain(net.endpoint(1), 1)
        assert isinstance(stat, StatReply)
        assert stat.stripes == (5, 6, 7)  # tuple, not list, post-wire
        assert (stat.size, stat.chunk_size, stat.scheme) == (
            123456, 4096, "rs(9,6)"
        )

    def test_agent_serves_chunk_write_then_read(self, backend, tmp_path):
        # The full gateway<->datanode chunk RPC against a live Agent:
        # write a chunk, read it back, byte-identical — over every
        # backend.  A read for a chunk the node never stored answers
        # ok=False instead of going silent (the degraded-read trigger).
        net = backend.make()
        net.attach(GATEWAY_ID, 1e9)
        net.attach(1, 1e9)
        backend.wire(net, [1, GATEWAY_ID])
        store = ChunkStore(tmp_path / "n1", 1, RateLimiter(1e9))
        agent = Agent(1, store, net, coordinator_id=COORDINATOR_ID,
                      config=FAST)
        agent.start()
        try:
            inbox = net.endpoint(GATEWAY_ID)
            payload = bytes((i * 7) % 256 for i in range(4096))
            net.send(GATEWAY_ID, 1, ChunkWrite(
                stripe_id=2, chunk_index=3, source=GATEWAY_ID, offset=0,
                payload=payload, checksum=zlib.crc32(payload),
                nonce=1, reply_to=GATEWAY_ID,
            ))
            (ack,) = drain(inbox, 1)
            assert isinstance(ack, ChunkWriteReply)
            assert ack.ok and ack.nonce == 1
            net.send(GATEWAY_ID, 1, ChunkRead(
                stripe_id=2, chunk_index=3, nonce=2, reply_to=GATEWAY_ID
            ))
            (reply,) = drain(inbox, 1)
            assert isinstance(reply, ChunkReadReply)
            assert reply.ok and reply.nonce == 2
            assert bytes(reply.payload) == payload
            net.send(GATEWAY_ID, 1, ChunkRead(
                stripe_id=99, chunk_index=0, nonce=3, reply_to=GATEWAY_ID
            ))
            (missing,) = drain(inbox, 1)
            assert not missing.ok
            assert missing.nonce == 3
            assert bytes(missing.payload) == b""
        finally:
            agent.stop()


class TestTcpOnly:
    """Socket-path behaviors with no in-memory analogue."""

    def _loopback(self):
        net = TcpNetwork(metrics=MetricsRegistry())
        net.attach(0, None)
        net.attach(1, None)
        host, port = net.listen()
        net.add_peer(1, host, port)
        return net, host, port

    def test_corrupt_stream_rejected_connection_survives(self):
        net, host, port = self._loopback()
        try:
            with socket.create_connection((host, port)) as sock:
                sock.sendall(b"GET / HTTP/1.1\r\n" + b"\x00" * 64)
            deadline = time.monotonic() + 5.0
            while net.net.frames_rejected.total() == 0:
                assert time.monotonic() < deadline, "rejection not counted"
                time.sleep(0.01)
            # The poisoned connection is dropped, but the transport
            # still delivers frames arriving on healthy connections.
            net.send(0, 1, Pong(node_id=0, nonce=7))
            (got,) = drain(net.endpoint(1), 1)
            assert got.nonce == 7
        finally:
            net.close()

    def test_truncated_frame_rejected(self):
        net, host, port = self._loopback()
        try:
            from repro.net import encode_frame

            frame = encode_frame(0, 1, Pong(node_id=0, nonce=1))
            with socket.create_connection((host, port)) as sock:
                sock.sendall(frame[:-5])  # header promises more bytes
            deadline = time.monotonic() + 5.0
            while net.net.frames_rejected.total() == 0:
                assert time.monotonic() < deadline, "rejection not counted"
                time.sleep(0.01)
        finally:
            net.close()

    def test_peer_registered_before_listener_connects_lazily(self):
        # Backoff absorbs startup races: the frame sent before anyone
        # listens arrives once the server comes up.
        sender = TcpNetwork(connect_timeout=10.0)
        receiver = TcpNetwork()
        try:
            sender.attach(0, None)
            receiver.attach(1, None)
            with socket.socket() as probe:
                probe.bind(("127.0.0.1", 0))
                port = probe.getsockname()[1]
            sender.add_peer(1, "127.0.0.1", port)
            sender.send(0, 1, Pong(node_id=0, nonce=3))
            time.sleep(0.3)  # a few failed dials happen first
            receiver.listen("127.0.0.1", port)
            (got,) = drain(receiver.endpoint(1), 1)
            assert got.nonce == 3
        finally:
            sender.close()
            receiver.close()

    def test_close_drains_queued_frames(self):
        net, host, port = self._loopback()
        for i in range(50):
            net.send(0, 1, Pong(node_id=0, nonce=i))
        net.close(drain=True)
        # Delivery happened before the sockets went down.
        got = drain(net.endpoint(1), 50, timeout=5.0)
        assert [m.nonce for m in got] == list(range(50))


@pytest.mark.skipif(not shm_available(), reason="needs POSIX shm + flock")
class TestShmOnly:
    """Ring-path behaviors with no in-memory or socket analogue."""

    def test_ring_wraparound_preserves_frames(self):
        from repro.net import ShmRing

        ring = ShmRing("fpr-test-wrap", capacity=1 << 12, create=True)
        try:
            sent = []
            for i in range(64):  # far more bytes than one ring fill
                frame = bytes([i]) * (200 + i)
                sent.append(frame)
                assert ring.write([frame], timeout=1.0)
                for got in ring.read_frames():
                    assert got == sent.pop(0)
            assert not sent
        finally:
            ring.close()

    def test_oversized_frame_raises(self):
        from repro.net import ShmRing

        ring = ShmRing("fpr-test-big", capacity=1 << 10, create=True)
        try:
            with pytest.raises(ValueError, match="ring capacity"):
                ring.write([b"x" * (1 << 11)], timeout=0.1)
        finally:
            ring.close()

    def test_full_ring_blocks_then_drops_after_timeout(self):
        from repro.net import ShmRing

        net = ShmNetwork(connect_timeout=0.2)
        sink = ShmRing("fpr-test-full", capacity=1 << 12, create=True)
        try:
            net.attach(0, None)
            # A peer whose ring is never drained: sends fill it, block
            # for connect_timeout, then count as dropped.
            net.add_peer(2, "fpr-test-full")
            for i in range(64):  # far more bytes than the sink holds
                net.send(0, 2, Pong(node_id=0, nonce=i))
                if net.net.frames_dropped.total() > 0:
                    break
            assert net.net.frames_dropped.total() > 0
        finally:
            sink.close()
            net.close()

    def test_corrupt_frame_skipped_stream_survives(self):
        net = ShmNetwork()
        try:
            net.attach(0, None)
            net.attach(1, None)
            name = net.listen()
            net.add_peer(1, name)
            from repro.net import ShmRing

            writer = ShmRing(name)
            try:
                writer.write([b"\x00" * 40], timeout=1.0)  # bad magic
            finally:
                writer.close()
            net.send(0, 1, Pong(node_id=0, nonce=9))
            (got,) = drain(net.endpoint(1), 1)
            assert got.nonce == 9
            assert net.net.frames_rejected.total() == 1
        finally:
            net.close()


@pytest.mark.skipif(not shm_available(), reason="needs POSIX shm + flock")
class TestKillResumeOverShm:
    def test_coordinator_crash_and_recovery_across_rings(self, tmp_path):
        cluster = StorageCluster.random(
            num_nodes=8,
            num_stripes=10,
            n=5,
            k=3,
            num_hot_standby=0,
            seed=5,
            chunk_size=1 << 14,
        )
        cluster.node(0).mark_soon_to_fail()
        net = ShmNetwork(metrics=MetricsRegistry())
        name = net.listen()
        for node_id in list(cluster.nodes) + [COORDINATOR_ID]:
            net.add_peer(node_id, name)
        testbed = EmulatedTestbed(
            cluster,
            make_codec("rs(5,3)"),
            packet_size=1 << 12,
            workdir=tmp_path / "bed",
            config=FAST,
            journal_path=tmp_path / "repair.journal",
            network=net,
        )
        try:
            testbed.start()
            testbed.load_random_data(seed=5)
            plan = FastPRPlanner(seed=5).plan(cluster, 0)
            plan.validate(cluster)
            testbed.kill_coordinator_after(3)
            with pytest.raises(CoordinatorCrash):
                testbed.execute(plan)
            successor = testbed.restart_coordinator()
            assert successor.epoch == 1
            result = testbed.resume()
            assert result.chunks_repaired + result.recovered_chunks == (
                plan.total_chunks
            )
            testbed.verify_plan(plan, result)
            assert Scrubber(testbed).scan().clean
            # The repair's frames really crossed the ring layer.
            assert net.net.frames_received.total() > 0
        finally:
            testbed.shutdown()
            net.close()


class TestKillResumeOverTcp:
    def test_coordinator_crash_and_recovery_across_sockets(self, tmp_path):
        cluster = StorageCluster.random(
            num_nodes=8,
            num_stripes=10,
            n=5,
            k=3,
            num_hot_standby=0,
            seed=5,
            chunk_size=1 << 14,
        )
        cluster.node(0).mark_soon_to_fail()
        net = TcpNetwork(metrics=MetricsRegistry())
        host, port = net.listen()
        for node_id in list(cluster.nodes) + [COORDINATOR_ID]:
            net.add_peer(node_id, host, port)
        testbed = EmulatedTestbed(
            cluster,
            make_codec("rs(5,3)"),
            packet_size=1 << 12,
            workdir=tmp_path / "bed",
            config=FAST,
            journal_path=tmp_path / "repair.journal",
            network=net,
        )
        try:
            testbed.start()
            testbed.load_random_data(seed=5)
            plan = FastPRPlanner(seed=5).plan(cluster, 0)
            plan.validate(cluster)
            testbed.kill_coordinator_after(3)
            with pytest.raises(CoordinatorCrash):
                testbed.execute(plan)
            successor = testbed.restart_coordinator()
            assert successor.epoch == 1
            result = testbed.resume()
            assert result.chunks_repaired + result.recovered_chunks == (
                plan.total_chunks
            )
            testbed.verify_plan(plan, result)
            assert Scrubber(testbed).scan().clean
            # The repair's frames really crossed the socket layer.
            assert net.net.frames_received.total() > 0
        finally:
            testbed.shutdown()
            net.close()
