"""The per-node repair agent (Section V).

Each storage node runs an :class:`Agent` with:

* a *dispatcher* thread draining the node's inbox,
* a *send worker* that streams chunks out — one chunk at a time as a
  synchronous round trip (the next chunk starts only after the
  destination confirms the previous one is written, matching the
  sequential read->transmit->write decomposition of Eq. (4)); within a
  chunk, a reader thread and the sender loop pipeline packets (the
  paper's multi-threaded pipeline, Experiment B.1),
* one *decode thread per chunk being assembled*, which applies the
  GF(2^8) recovery coefficient to each arriving packet and writes the
  fully decoded chunk to disk (the paper's "one thread for decoding the
  received packets").

Migration and reconstruction share one code path: a migration is an
assembly with a single source whose coefficient is 1.
"""

from __future__ import annotations

import queue
import threading
from typing import Dict, Optional

import numpy as np

from ..cluster.chunk import NodeId
from ..ec.galois import gf_addmul_bytes
from .datanode import ChunkStore
from .messages import (
    ActionKey,
    DataPacket,
    ReceiveCommand,
    RelayCommand,
    RepairAck,
    SendCommand,
    Shutdown,
    WriteComplete,
)
from .transport import Network

#: cap on buffered packets awaiting a late Receive/Relay registration
MAX_PENDING_PACKETS = 4096


class AgentError(RuntimeError):
    """Raised (and recorded) on protocol violations inside an agent."""


class _Assembly:
    """Accumulates coefficient-scaled packets into a repaired chunk.

    Each packet offset is decoded in memory; once every source has
    contributed to an offset, that packet is written to disk — so
    receive, decode and write pipeline across packets, matching the
    prototype's multi-threaded repair path (Section V).
    """

    def __init__(self, command: ReceiveCommand, store: ChunkStore):
        self.command = command
        self.store = store
        self.packets: "queue.Queue" = queue.Queue()
        self._buffer = np.zeros(command.chunk_size, dtype=np.uint8)
        self._arrived: Dict[int, int] = {}
        self._remaining_offsets = self._count_offsets()

    def _count_offsets(self) -> int:
        size, packet = self.command.chunk_size, self.command.packet_size
        return (size + packet - 1) // packet

    def run(self) -> None:
        """Decode-thread body: drain packets until the chunk completes."""
        num_sources = len(self.command.sources)
        size = self.command.chunk_size
        while self._remaining_offsets > 0:
            packet: DataPacket = self.packets.get()
            coeff = self.command.sources.get(packet.source)
            if coeff is None:
                raise AgentError(
                    f"unexpected packet source {packet.source} for "
                    f"{self.command.key}"
                )
            data = np.frombuffer(packet.payload, dtype=np.uint8)
            end = packet.offset + len(data)
            if end > size:
                raise AgentError(f"packet overruns chunk at {packet.offset}")
            gf_addmul_bytes(self._buffer[packet.offset : end], coeff, data)
            count = self._arrived.get(packet.offset, 0) + 1
            if count == num_sources:
                self._arrived.pop(packet.offset, None)
                self._remaining_offsets -= 1
                # Fully decoded packet: write it out (throttled).
                self.store.write_packet(
                    self.command.stripe_id,
                    packet.offset,
                    self._buffer[packet.offset : end].tobytes(),
                    size,
                )
            else:
                self._arrived[packet.offset] = count


class _Relay:
    """One stage of a repair pipeline (Li et al.'s repair pipelining).

    Reads the node's own chunk of the stripe packet by packet, scales
    it by the recovery coefficient, XORs in the upstream stage's
    partial sum (unless this is the first stage), and forwards the
    result to the next hop.
    """

    def __init__(self, command: RelayCommand, store: ChunkStore, agent: "Agent"):
        self.command = command
        self.store = store
        self.agent = agent
        self.packets: "queue.Queue" = queue.Queue()

    def run(self) -> None:
        command = self.command
        size = self.store.size(command.stripe_id)
        if size != command.chunk_size:
            raise AgentError(
                f"relay chunk size mismatch: stored {size}, command "
                f"{command.chunk_size}"
            )
        packet_size = min(command.packet_size, size)
        from ..ec.galois import gf_mul_bytes

        for offset in range(0, size, packet_size):
            length = min(packet_size, size - offset)
            own = np.frombuffer(
                self.store.read_packet(command.stripe_id, offset, length),
                dtype=np.uint8,
            )
            out = gf_mul_bytes(command.coeff, own)
            if not command.first:
                upstream: DataPacket = self.packets.get()
                if upstream.offset != offset:
                    raise AgentError(
                        f"pipeline packet out of order: got offset "
                        f"{upstream.offset}, expected {offset}"
                    )
                np.bitwise_xor(
                    out,
                    np.frombuffer(upstream.payload, dtype=np.uint8),
                    out=out,
                )
            self.agent.network.send(
                self.agent.node_id,
                command.destination,
                DataPacket(
                    stripe_id=command.stripe_id,
                    chunk_index=command.chunk_index,
                    source=self.agent.node_id,
                    offset=offset,
                    payload=out.tobytes(),
                ),
            )


class Agent:
    """A storage node's repair agent.

    Args:
        node_id: this node.
        store: the node's chunk store.
        network: shared in-process network (already attached).
        coordinator_id: where to send :class:`RepairAck` messages.
        pipeline_depth: bounded queue between the packet reader and the
            packet sender; 0 disables pipelining (read the whole chunk,
            then send).
        ack_timeout: seconds a sender waits for a destination's
            :class:`WriteComplete` before giving up.
    """

    def __init__(
        self,
        node_id: NodeId,
        store: ChunkStore,
        network: Network,
        coordinator_id: NodeId,
        pipeline_depth: int = 2,
        ack_timeout: float = 120.0,
    ):
        self.node_id = node_id
        self.store = store
        self.network = network
        self.coordinator_id = coordinator_id
        self.pipeline_depth = pipeline_depth
        self.ack_timeout = ack_timeout
        self._endpoint = network.endpoint(node_id)
        self._assemblies: Dict[ActionKey, _Assembly] = {}
        self._relays: Dict[ActionKey, _Relay] = {}
        self._pending: Dict[ActionKey, list] = {}
        self._assembly_lock = threading.Lock()
        self._send_queue: "queue.Queue" = queue.Queue()
        self._write_acks: Dict[ActionKey, threading.Event] = {}
        self._ack_lock = threading.Lock()
        self._threads = []
        self.errors = []
        self._started = False

    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for target, name in (
            (self._dispatch_loop, "dispatch"),
            (self._send_loop, "send"),
        ):
            thread = threading.Thread(
                target=self._guard(target),
                name=f"agent-{self.node_id}-{name}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        """Stop both worker loops and join them."""
        self._endpoint.inbox.put(Shutdown())
        self._send_queue.put(None)
        for thread in self._threads:
            thread.join(timeout=30)
        self._threads = []
        self._started = False

    def _guard(self, fn):
        def runner():
            try:
                fn()
            except Exception as exc:  # pragma: no cover - surfaced in tests
                self.errors.append(exc)

        return runner

    # ------------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            message = self._endpoint.inbox.get()
            if isinstance(message, Shutdown):
                return
            try:
                self._dispatch_one(message)
            except Exception as exc:
                # Record and keep serving: one malformed message must
                # not wedge the whole node.
                self.errors.append(exc)

    def _dispatch_one(self, message) -> None:
        if isinstance(message, ReceiveCommand):
            self._start_assembly(message)
        elif isinstance(message, SendCommand):
            self._send_queue.put(message)
        elif isinstance(message, RelayCommand):
            self._start_relay(message)
        elif isinstance(message, DataPacket):
            self._route_packet(message)
        elif isinstance(message, WriteComplete):
            self._ack_event(message.key).set()
        else:
            raise AgentError(f"unknown message {message!r}")

    def _ack_event(self, key: ActionKey) -> threading.Event:
        with self._ack_lock:
            event = self._write_acks.get(key)
            if event is None:
                event = threading.Event()
                self._write_acks[key] = event
            return event

    def _start_assembly(self, command: ReceiveCommand) -> None:
        assembly = _Assembly(command, self.store)
        with self._assembly_lock:
            if command.key in self._assemblies:
                raise AgentError(f"duplicate assembly {command.key}")
            self._assemblies[command.key] = assembly
            for packet in self._pending.pop(command.key, []):
                assembly.packets.put(packet)
        thread = threading.Thread(
            target=self._guard(lambda: self._run_assembly(assembly)),
            name=f"agent-{self.node_id}-decode-{command.key}",
            daemon=True,
        )
        thread.start()

    def _start_relay(self, command: RelayCommand) -> None:
        relay = _Relay(command, self.store, self)
        with self._assembly_lock:
            if command.key in self._relays:
                raise AgentError(f"duplicate relay {command.key}")
            self._relays[command.key] = relay
            for packet in self._pending.pop(command.key, []):
                relay.packets.put(packet)
        thread = threading.Thread(
            target=self._guard(lambda: self._run_relay(relay)),
            name=f"agent-{self.node_id}-relay-{command.key}",
            daemon=True,
        )
        thread.start()

    def _run_relay(self, relay: _Relay) -> None:
        try:
            relay.run()
        finally:
            with self._assembly_lock:
                self._relays.pop(relay.command.key, None)

    def _run_assembly(self, assembly: _Assembly) -> None:
        assembly.run()
        key = assembly.command.key
        with self._assembly_lock:
            del self._assemblies[key]
        # Unblock every source's synchronous round trip...
        for source in assembly.command.sources:
            self.network.send(
                self.node_id, source, WriteComplete(key[0], key[1])
            )
        # ...then report completion to the coordinator.
        self.network.send(
            self.node_id,
            self.coordinator_id,
            RepairAck(key[0], key[1], self.node_id),
        )

    def _route_packet(self, packet: DataPacket) -> None:
        with self._assembly_lock:
            target = self._assemblies.get(packet.key) or self._relays.get(
                packet.key
            )
            if target is None:
                # The Receive/Relay command may still be in flight on a
                # pipelined path; buffer until it registers.
                pending = self._pending.setdefault(packet.key, [])
                if len(pending) >= MAX_PENDING_PACKETS:
                    raise AgentError(
                        f"pending-packet overflow for {packet.key} at node "
                        f"{self.node_id}: no Receive/Relay command arrived"
                    )
                pending.append(packet)
                return
        target.packets.put(packet)

    # ------------------------------------------------------------------

    def _send_loop(self) -> None:
        while True:
            command: Optional[SendCommand] = self._send_queue.get()
            if command is None:
                return
            key = (command.stripe_id, command.chunk_index)
            event = self._ack_event(key)
            self._stream_chunk(command)
            # Synchronous round trip: wait until the destination has
            # durably written the repaired chunk.
            if not event.wait(timeout=self.ack_timeout):
                raise AgentError(
                    f"node {self.node_id}: no WriteComplete for {key} "
                    f"within {self.ack_timeout}s"
                )
            with self._ack_lock:
                self._write_acks.pop(key, None)

    def _stream_chunk(self, command: SendCommand) -> None:
        """Read the local chunk packet-by-packet and stream it out."""
        size = self.store.size(command.stripe_id)
        packet_size = min(command.packet_size, size)
        offsets = list(range(0, size, packet_size))
        if self.pipeline_depth > 0 and len(offsets) > 1:
            buffer: "queue.Queue" = queue.Queue(maxsize=self.pipeline_depth)

            def reader():
                for offset in offsets:
                    length = min(packet_size, size - offset)
                    buffer.put(
                        (
                            offset,
                            self.store.read_packet(
                                command.stripe_id, offset, length
                            ),
                        )
                    )

            reader_thread = threading.Thread(
                target=self._guard(reader),
                name=f"agent-{self.node_id}-read",
                daemon=True,
            )
            reader_thread.start()
            for _ in offsets:
                offset, payload = buffer.get()
                self._send_packet(command, offset, payload)
            reader_thread.join()
        else:
            # No pipelining: read everything, then send (64 MB packets
            # in Experiment B.1).
            packets = [
                (
                    offset,
                    self.store.read_packet(
                        command.stripe_id,
                        offset,
                        min(packet_size, size - offset),
                    ),
                )
                for offset in offsets
            ]
            for offset, payload in packets:
                self._send_packet(command, offset, payload)

    def _send_packet(
        self, command: SendCommand, offset: int, payload: bytes
    ) -> None:
        self.network.send(
            self.node_id,
            command.destination,
            DataPacket(
                stripe_id=command.stripe_id,
                chunk_index=command.chunk_index,
                source=self.node_id,
                offset=offset,
                payload=payload,
            ),
        )
