"""Sharded multi-coordinator repair surviving correlated failures.

The acceptance bar of DESIGN.md §11: a 2-coordinator run with a
rack-level fault that kills one coordinator and a whole rack of agents
mid-repair still completes with every chunk byte-identical to a
fault-free run, the takeover visible in both the metrics
(``coord_takeovers_total``) and the dead shard's journal
(:class:`~repro.runtime.journal.ShardTakeover`).
"""

import threading
import time

import pytest

from repro.cluster import StorageCluster
from repro.cluster.topology import RackAwarePlacement, RackTopology
from repro.core.planner import FastPRPlanner
from repro.ec import make_codec
from repro.runtime import (
    COORDINATOR_ID,
    DomainCrashFault,
    FaultPlan,
    LeaseTable,
    MultiCoordinator,
    MultiRepairResult,
    RepairJournal,
    RuntimeConfig,
    ShardFailedError,
    ShardTakeover,
    shard_coordinator_id,
)
from repro.runtime.testbed import EmulatedTestbed

CHUNK = 16 * 1024

#: tight timings so takeovers happen in test time, not ops time
FAST = RuntimeConfig(
    ack_timeout=1.5,
    join_timeout=5.0,
    deadline_margin=4.0,
    min_deadline=0.8,
    max_retries=3,
    backoff_base=0.05,
    backoff_factor=2.0,
    backoff_cap=0.2,
    probe_timeout=0.4,
    heartbeat_interval=0.1,
    poll_interval=0.05,
    journal_fsync="never",
    inventory_timeout=2.0,
    lease_timeout=5.0,
)

NUM_RACKS = 5


def make_rack_cluster(num_stripes=30, seed=11):
    """15 storage + 3 standby nodes over 5 racks, rack-safe placement.

    RS(5,3) with one chunk per rack per stripe: a whole-rack kill costs
    each stripe at most one chunk — plus the STF chunk that is exactly
    the ``n - k = 2`` the code tolerates.
    """
    cluster = StorageCluster(
        num_nodes=15,
        num_hot_standby=3,
        disk_bandwidth=1e9,
        network_bandwidth=1e9,
        chunk_size=CHUNK,
    )
    topology = RackTopology.uniform(sorted(cluster.nodes), NUM_RACKS)
    placer = RackAwarePlacement(topology, max_per_rack=1, seed=seed)
    for _ in range(num_stripes):
        cluster.add_stripe(5, 3, placer.choose(cluster, 5))
    cluster.node(0).mark_soon_to_fail()
    return cluster, topology


def make_sharded_testbed(tmp_path, faults=None, topology=None, **kw):
    cluster, topo = make_rack_cluster(**kw)
    testbed = EmulatedTestbed(
        cluster,
        make_codec("rs(5,3)"),
        packet_size=CHUNK // 4,
        workdir=tmp_path / "bed",
        config=FAST,
        faults=faults,
        topology=topology if topology is not None else topo,
    )
    testbed.start()
    testbed.load_random_data(seed=1)
    return cluster, testbed


def assert_no_double_execution(testbed):
    for node_id, store in testbed.stores.items():
        for stripe_id, count in store.promotions.items():
            assert count <= 1, (
                f"node {node_id} promoted stripe {stripe_id} {count} times"
            )


# ----------------------------------------------------------------------
# lease unit tests
# ----------------------------------------------------------------------


class TestLeaseTable:
    def test_never_renewed_is_not_expired(self):
        lease = LeaseTable(timeout=0.01)
        assert not lease.expired(0)

    def test_renewal_then_expiry(self):
        lease = LeaseTable(timeout=0.05)
        lease.renew(1)
        assert not lease.expired(1)
        time.sleep(0.1)
        assert lease.expired(1)

    def test_revoke_restores_grace(self):
        lease = LeaseTable(timeout=0.01)
        lease.renew(2)
        time.sleep(0.05)
        assert lease.expired(2)
        lease.revoke(2)
        assert not lease.expired(2)

    def test_rejects_bad_timeout(self):
        with pytest.raises(ValueError):
            LeaseTable(timeout=0.0)


# ----------------------------------------------------------------------
# sharded repair, fault-free
# ----------------------------------------------------------------------


class TestShardedRepair:
    def test_two_shards_fault_free(self, tmp_path):
        cluster, testbed = make_sharded_testbed(tmp_path)
        try:
            plan = FastPRPlanner(seed=3).plan(cluster, 0)
            result = testbed.execute_sharded(plan, num_coordinators=2)
            assert isinstance(result, MultiRepairResult)
            assert result.takeovers == []
            assert not result.degraded
            assert set(result.per_shard) == {0, 1}
            assert result.chunks_repaired == plan.total_chunks
            testbed.verify_plan(plan, result)
            assert_no_double_execution(testbed)
            # One journal per shard, each a valid log.
            for shard in (0, 1):
                path = testbed.multi.journal_path(shard)
                assert path.exists()
                assert RepairJournal.replay(path, truncate=False)
        finally:
            testbed.shutdown(check_errors=False)

    def test_shards_partition_the_stripes(self, tmp_path):
        cluster, testbed = make_sharded_testbed(tmp_path)
        try:
            plan = FastPRPlanner(seed=3).plan(cluster, 0)
            result = testbed.execute_sharded(plan, num_coordinators=3)
            keys = [
                (a.stripe_id, a.chunk_index) for a in result.executed_actions
            ]
            assert len(keys) == len(set(keys)), "an action ran on two shards"
            assert len(keys) == plan.total_chunks
        finally:
            testbed.shutdown(check_errors=False)

    def test_single_shard_run(self, tmp_path):
        cluster, testbed = make_sharded_testbed(tmp_path)
        try:
            plan = FastPRPlanner(seed=3).plan(cluster, 0)
            result = testbed.execute_sharded(plan, num_coordinators=1)
            assert set(result.per_shard) == {0}
            testbed.verify_plan(plan, result)
        finally:
            testbed.shutdown(check_errors=False)

    def test_coordinator_count_is_sticky(self, tmp_path):
        cluster, testbed = make_sharded_testbed(tmp_path)
        try:
            plan = FastPRPlanner(seed=3).plan(cluster, 0)
            testbed.execute_sharded(plan, num_coordinators=2)
            with pytest.raises(RuntimeError):
                testbed.execute_sharded(plan, num_coordinators=3)
        finally:
            testbed.shutdown(check_errors=False)


# ----------------------------------------------------------------------
# correlated failures: the acceptance scenario
# ----------------------------------------------------------------------


class TestCorrelatedFailures:
    def rack_fault(self, rack=1, at_time=0.0, coordinators=(1,)):
        return FaultPlan(
            domain_crashes=[
                DomainCrashFault(
                    kind="rack",
                    index=rack,
                    at_time=at_time,
                    coordinators=coordinators,
                )
            ]
        )

    def test_rack_kill_takes_out_coordinator_and_agents(self, tmp_path):
        """The §11 acceptance run, in-memory transport.

        Rack 1 dies at repair start: agents 1, 6, 11 (and standby 16)
        crash and shard 1's coordinator is killed through its journal.
        Shard 0 must adopt shard 1, replay its journal, and finish the
        whole plan byte-identical.
        """
        faults = self.rack_fault()
        cluster, testbed = make_sharded_testbed(tmp_path, faults=faults)
        try:
            plan = FastPRPlanner(seed=3).plan(cluster, 0)
            result = testbed.execute_sharded(plan, num_coordinators=2)
            # The takeover happened and is visible everywhere it must be.
            assert len(result.takeovers) >= 1
            event = result.takeovers[0]
            assert event.shard == 1
            assert event.adopter == 0
            assert event.epoch >= 1
            assert result.degraded
            counter = testbed.metrics.counter(
                "coord_takeovers_total",
                "shard ownership handoffs after a coordinator death, "
                "by shard",
            )
            assert counter.value(shard=1) >= 1
            records = RepairJournal.replay(
                testbed.multi.journal_path(1), truncate=False
            )
            handoffs = [r for r in records if isinstance(r, ShardTakeover)]
            assert handoffs and handoffs[0].shard == 1
            assert handoffs[0].adopter == 0
            # The repair still completed, correct to the byte.
            testbed.verify_plan(plan, result)
            assert_no_double_execution(testbed)
            dead = set(result.dead_nodes)
            assert dead, "rack agents should have been declared dead"
            assert dead <= {1, 6, 11, 16}
        finally:
            testbed.shutdown(check_errors=False)

    def test_rack_kill_matches_fault_free_bytes(self, tmp_path):
        """Chunk contents after the faulted run == fault-free run."""
        plans = {}
        contents = {}
        for label, faults in (
            ("clean", None),
            ("faulted", self.rack_fault()),
        ):
            cluster, testbed = make_sharded_testbed(
                tmp_path / label, faults=faults
            )
            try:
                plan = FastPRPlanner(seed=3).plan(cluster, 0)
                result = testbed.execute_sharded(plan, num_coordinators=2)
                testbed.verify_plan(plan, result)
                plans[label] = {
                    (a.stripe_id, a.chunk_index)
                    for a in plan.actions()
                }
                snapshot = {}
                for action in result.executed_actions:
                    store = testbed.stores[action.destination]
                    snapshot[(action.stripe_id, action.chunk_index)] = (
                        store.read(action.stripe_id)
                    )
                contents[label] = snapshot
            finally:
                testbed.shutdown(check_errors=False)
        assert plans["clean"] == plans["faulted"]
        for key, blob in contents["clean"].items():
            assert contents["faulted"][key] == blob, (
                f"chunk {key} differs between clean and faulted runs"
            )

    def test_coordinator_killed_during_takeover(self, tmp_path, monkeypatch):
        """A second kill landing mid-takeover arms the successor too."""
        first = []
        original = MultiCoordinator._take_over

        def killing_take_over(self, shard, dead, outcome):
            original(self, shard, dead, outcome)
            if not first:
                first.append(shard)
                self.kill_shard(shard)  # the successor dies too

        monkeypatch.setattr(
            MultiCoordinator, "_take_over", killing_take_over
        )
        faults = self.rack_fault()
        cluster, testbed = make_sharded_testbed(tmp_path, faults=faults)
        try:
            plan = FastPRPlanner(seed=3).plan(cluster, 0)
            result = testbed.execute_sharded(plan, num_coordinators=2)
            assert len(result.takeovers) >= 2
            assert [e.shard for e in result.takeovers[:2]] == [1, 1]
            epochs = [e.epoch for e in result.takeovers]
            assert epochs == sorted(epochs)
            testbed.verify_plan(plan, result)
            assert_no_double_execution(testbed)
        finally:
            testbed.shutdown(check_errors=False)

    def test_takeover_cap_fails_loudly(self, tmp_path):
        cluster, testbed = make_sharded_testbed(tmp_path)
        try:
            plan = FastPRPlanner(seed=3).plan(cluster, 0)
            testbed.coordinator.close()
            try:
                testbed.network.detach(COORDINATOR_ID)
            except KeyError:
                pass
            multi = MultiCoordinator(
                testbed.network,
                cluster,
                testbed.codec,
                CHUNK // 4,
                journal_dir=tmp_path / "shards",
                num_shards=2,
                config=FAST,
                metrics=testbed.metrics,
                max_takeovers=0,
            )
            multi.kill_shard(1)
            with pytest.raises(ShardFailedError):
                multi.execute(plan)
            multi.close()
        finally:
            testbed.shutdown(check_errors=False)

    def test_pending_kill_arms_next_incarnation(self, tmp_path):
        """kill_shard with no live incarnation is remembered, not lost."""
        cluster, testbed = make_sharded_testbed(tmp_path)
        try:
            plan = FastPRPlanner(seed=3).plan(cluster, 0)
            testbed.coordinator.close()
            try:
                testbed.network.detach(COORDINATOR_ID)
            except KeyError:
                pass
            multi = MultiCoordinator(
                testbed.network,
                cluster,
                testbed.codec,
                CHUNK // 4,
                journal_dir=tmp_path / "shards",
                num_shards=2,
                config=FAST,
                metrics=testbed.metrics,
            )
            multi.kill_shard(1)  # before any incarnation exists
            result = multi.execute(plan)
            assert [e.shard for e in result.takeovers] == [1]
            multi.close()
            testbed.multi = multi  # so verify has the stores intact
            testbed.verify_plan(plan, result)
        finally:
            testbed.shutdown(check_errors=False)


# ----------------------------------------------------------------------
# shard identity plumbing
# ----------------------------------------------------------------------


def test_shard_zero_keeps_the_conventional_endpoint():
    assert shard_coordinator_id(0) == COORDINATOR_ID
    assert shard_coordinator_id(1) == -2
    assert shard_coordinator_id(4) == -5
