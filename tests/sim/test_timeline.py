"""Tests for the cluster-lifetime timeline simulation."""

import pytest

from repro.cluster import StorageCluster
from repro.core.plan import RepairScenario
from repro.failure.predictor import LogisticPredictor, ThresholdPredictor
from repro.failure.smart import SmartTraceGenerator
from repro.sim.timeline import ClusterLifetime, EventKind


@pytest.fixture(scope="module")
def predictor():
    fleet = SmartTraceGenerator(
        250, horizon_days=120, annual_failure_rate=0.25, seed=81
    ).generate()
    return LogisticPredictor(seed=0).fit(fleet)


def build(num_nodes=18, failure_rate=0.5, seed=82, **kwargs):
    cluster = StorageCluster.random(
        num_nodes, 60, 5, 3, num_hot_standby=3, seed=seed
    )
    traces = SmartTraceGenerator(
        num_nodes,
        horizon_days=120,
        annual_failure_rate=failure_rate,
        seed=seed,
    ).generate()
    return cluster, traces


class TestLifetime:
    def test_full_horizon_runs_clean(self, predictor):
        cluster, traces = build()
        lifetime = ClusterLifetime(
            cluster, traces, predictor, seed=0, rebalance_every=10
        )
        report = lifetime.run()
        # At 50% AFR over 120 days something must have happened.
        assert report.events, "expected at least one repair event"
        cluster.verify_fault_tolerance()
        # Every repaired node ends up decommissioned and chunk-free
        # (predictive path) or chunk-free (reactive path).
        for event in report.predictive_repairs:
            assert cluster.node(event.node_id).is_failed
            assert cluster.load_of(event.node_id) == 0
        for event in report.reactive_repairs:
            assert cluster.load_of(event.node_id) == 0

    def test_predictive_repairs_have_lead(self, predictor):
        cluster, traces = build(seed=83)
        report = ClusterLifetime(cluster, traces, predictor, seed=0).run()
        for event in report.predictive_repairs:
            if event.lead_days is not None:
                assert event.lead_days > 0

    def test_aggregates_consistent(self, predictor):
        cluster, traces = build(seed=84)
        report = ClusterLifetime(cluster, traces, predictor, seed=0).run()
        assert report.total_chunks_repaired == sum(
            e.chunks for e in report.events
        )
        assert report.total_repair_time == pytest.approx(
            sum(e.repair_time for e in report.events)
        )
        assert "TimelineReport" in report.summary()

    def test_never_predictor_forces_reactive(self):
        cluster, traces = build(seed=85)

        class Never(ThresholdPredictor):
            def predict(self, window):
                return False

        report = ClusterLifetime(cluster, traces, Never(), seed=0).run()
        assert report.predictive_repairs == []
        failing = sum(t.will_fail for t in traces)
        assert len(report.reactive_repairs) == failing

    def test_fastpr_total_repair_time_beats_migration(self, predictor):
        results = {}
        for name in ("fastpr", "migration"):
            cluster, traces = build(seed=86)
            report = ClusterLifetime(
                cluster, traces, predictor, planner=name, seed=0
            ).run()
            results[name] = report
        if not results["fastpr"].predictive_repairs:
            pytest.skip("seed produced no predictive repairs")
        assert (
            results["fastpr"].total_repair_time
            <= results["migration"].total_repair_time
        )

    def test_hot_standby_scenario(self, predictor):
        cluster, traces = build(seed=87)
        report = ClusterLifetime(
            cluster,
            traces,
            predictor,
            scenario=RepairScenario.HOT_STANDBY,
            seed=0,
        ).run()
        cluster.verify_fault_tolerance()

    def test_rebalance_events_logged(self, predictor):
        cluster, traces = build(seed=88)
        report = ClusterLifetime(
            cluster, traces, predictor, seed=0, rebalance_every=1
        ).run()
        if report.predictive_repairs or report.reactive_repairs:
            # A repair skews load; rebalancing usually moves something.
            kinds = {e.kind for e in report.events}
            assert EventKind.REBALANCE in kinds or len(report.events) <= 1

    def test_unknown_planner_rejected(self, predictor):
        cluster, traces = build(seed=89)
        with pytest.raises(ValueError, match="unknown planner"):
            ClusterLifetime(cluster, traces, predictor, planner="magic")
