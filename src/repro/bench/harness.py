"""Experiment result containers and text rendering.

Every paper figure is regenerated as an :class:`Experiment` holding one
:class:`Panel` per sub-figure; a panel holds one :class:`Series` per
curve/bar group.  ``render()`` prints the same rows the paper plots,
e.g.::

    Fig 8(b) — Varying RS(n,k)  [repair time per chunk, seconds]
    x               optimum   fastpr   reconstruction   migration
    RS(9,6)           0.248    0.330            0.440       1.879
    ...
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Dict, List, Sequence, Union

Number = Union[int, float]


@dataclass
class Series:
    """One curve: a label plus a y value per panel x tick."""

    label: str
    values: List[float] = field(default_factory=list)


@dataclass
class Panel:
    """One sub-figure: x ticks plus the series drawn over them."""

    title: str
    xlabel: str
    xticks: List[str] = field(default_factory=list)
    series: List[Series] = field(default_factory=list)
    ylabel: str = "repair time per chunk (s)"

    def add_point(self, xtick: str, values: Dict[str, float]) -> None:
        """Append one x position with a value per series label."""
        self.xticks.append(str(xtick))
        for label, value in values.items():
            serie = self.get(label)
            if serie is None:
                serie = Series(label=label)
                self.series.append(serie)
            serie.values.append(value)

    def get(self, label: str):
        for serie in self.series:
            if serie.label == label:
                return serie
        return None

    def values_of(self, label: str) -> List[float]:
        serie = self.get(label)
        if serie is None:
            raise KeyError(f"no series {label!r} in panel {self.title!r}")
        return serie.values

    def render(self) -> str:
        labels = [s.label for s in self.series]
        xwidth = max([len(self.xlabel)] + [len(x) for x in self.xticks]) + 2
        widths = [max(len(label), 9) + 2 for label in labels]
        lines = [f"{self.title}  [{self.ylabel}]"]
        header = self.xlabel.ljust(xwidth) + "".join(
            label.rjust(w) for label, w in zip(labels, widths)
        )
        lines.append(header)
        for i, xtick in enumerate(self.xticks):
            row = xtick.ljust(xwidth)
            for serie, w in zip(self.series, widths):
                value = serie.values[i] if i < len(serie.values) else float("nan")
                row += f"{value:>{w}.4f}"
            lines.append(row)
        return "\n".join(lines)


@dataclass
class Experiment:
    """A full figure reproduction."""

    experiment_id: str
    title: str
    panels: List[Panel] = field(default_factory=list)

    def panel(self, title: str) -> Panel:
        for panel in self.panels:
            if panel.title == title:
                return panel
        raise KeyError(f"no panel {title!r} in {self.experiment_id}")

    def render(self) -> str:
        out = [f"=== {self.experiment_id}: {self.title} ==="]
        for panel in self.panels:
            out.append(panel.render())
            out.append("")
        return "\n".join(out)

    def to_dict(self) -> dict:
        """JSON-compatible form (used by the report generator)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "panels": [
                {
                    "title": p.title,
                    "xlabel": p.xlabel,
                    "ylabel": p.ylabel,
                    "xticks": list(p.xticks),
                    "series": [
                        {"label": s.label, "values": list(s.values)}
                        for s in p.series
                    ],
                }
                for p in self.panels
            ],
        }

    @classmethod
    def from_dict(cls, document: dict) -> "Experiment":
        """Inverse of :meth:`to_dict`."""
        exp = cls(document["experiment_id"], document["title"])
        for pdoc in document["panels"]:
            panel = Panel(
                pdoc["title"],
                pdoc["xlabel"],
                xticks=list(pdoc["xticks"]),
                ylabel=pdoc.get("ylabel", "repair time per chunk (s)"),
            )
            panel.series = [
                Series(label=s["label"], values=list(s["values"]))
                for s in pdoc["series"]
            ]
            exp.panels.append(panel)
        return exp


def average_runs(values: Sequence[float]) -> float:
    """Mean with an explicit error for empty inputs."""
    if not values:
        raise ValueError("no values to average")
    return mean(values)


def reduction(baseline: float, improved: float) -> float:
    """Fractional reduction of ``improved`` vs ``baseline`` (0..1)."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return 1.0 - improved / baseline
