"""Property tests for the vectorized hot-path kernels (DESIGN.md §13).

The batched/in-place GF(256) kernels and the batch codec entry points
must be bit-exact with the scalar reference on every shape: random
lengths (covering the uint16 paired-lookup threshold and its odd
tails), coefficients 0 and 1, aliased ``out=`` buffers, non-contiguous
views, and stripes grouped by arbitrary availability sets.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ec import make_codec
from repro.ec.galois import (
    gf_addmul_bytes,
    gf_matmul_bytes,
    gf_mul,
    gf_mul_bytes,
)

coeffs = st.integers(min_value=0, max_value=255)
#: always exercise 0 and 1 (identity/annihilator fast paths) heavily
edge_coeffs = st.sampled_from([0, 1, 2, 255])


def ref_mul(coeff: int, data) -> np.ndarray:
    """Byte-at-a-time scalar reference for every vectorized kernel."""
    return np.array(
        [gf_mul(coeff, int(b)) for b in np.asarray(data).ravel()],
        dtype=np.uint8,
    ).reshape(np.asarray(data).shape)


class TestMulBytesProperties:
    @settings(max_examples=60, deadline=None)
    @given(coeff=coeffs, data=st.binary(max_size=300))
    def test_matches_scalar_reference(self, coeff, data):
        arr = np.frombuffer(data, dtype=np.uint8)
        assert np.array_equal(gf_mul_bytes(coeff, arr), ref_mul(coeff, arr))

    @settings(max_examples=60, deadline=None)
    @given(coeff=coeffs, data=st.binary(min_size=1, max_size=300))
    def test_out_aliasing_input_is_safe(self, coeff, data):
        arr = np.frombuffer(bytearray(data), dtype=np.uint8).copy()
        expected = ref_mul(coeff, arr)
        result = gf_mul_bytes(coeff, arr, out=arr)
        assert result is arr
        assert np.array_equal(arr, expected)

    @settings(max_examples=40, deadline=None)
    @given(coeff=edge_coeffs, data=st.binary(max_size=100))
    def test_identity_and_annihilator(self, coeff, data):
        arr = np.frombuffer(data, dtype=np.uint8)
        result = gf_mul_bytes(coeff, arr)
        if coeff == 0:
            assert not result.any()
        elif coeff == 1:
            assert np.array_equal(result, arr)
        assert np.array_equal(result, ref_mul(coeff, arr))

    @pytest.mark.parametrize("size", [4096, 4097, 8191, 65536])
    @pytest.mark.parametrize("coeff", [2, 37, 255])
    def test_u16_fast_path_matches_table_lookup(self, size, coeff):
        """Sizes past the paired-lookup threshold, incl. odd tails."""
        from repro.ec.galois import _MUL_TABLE

        rng = np.random.default_rng(7)
        data = rng.integers(0, 256, size=size, dtype=np.uint8)
        expected = _MUL_TABLE[coeff][data]
        assert np.array_equal(gf_mul_bytes(coeff, data), expected)
        # aliased out= through the same fast path
        scratch = data.copy()
        gf_mul_bytes(coeff, scratch, out=scratch)
        assert np.array_equal(scratch, expected)

    def test_non_contiguous_view(self):
        rng = np.random.default_rng(11)
        data = rng.integers(0, 256, size=8192, dtype=np.uint8)
        strided = data[::2]
        assert np.array_equal(
            gf_mul_bytes(91, strided), ref_mul(91, strided)
        )

    def test_out_must_match_shape_and_dtype(self):
        data = np.zeros(16, dtype=np.uint8)
        with pytest.raises(ValueError):
            gf_mul_bytes(3, data, out=np.zeros(8, dtype=np.uint8))
        with pytest.raises(ValueError):
            gf_mul_bytes(3, data, out=np.zeros(16, dtype=np.uint16))


class TestAddmulBytesProperties:
    @settings(max_examples=60, deadline=None)
    @given(coeff=coeffs, data=st.binary(min_size=1, max_size=300))
    def test_accumulates_xor_of_product(self, coeff, data):
        arr = np.frombuffer(data, dtype=np.uint8)
        rng = np.random.default_rng(3)
        acc = rng.integers(0, 256, size=len(arr), dtype=np.uint8)
        expected = acc ^ ref_mul(coeff, arr)
        gf_addmul_bytes(acc, coeff, arr)
        assert np.array_equal(acc, expected)

    @pytest.mark.parametrize("size", [4096, 4099])
    def test_large_accumulation_is_allocation_path_exact(self, size):
        rng = np.random.default_rng(5)
        data = rng.integers(0, 256, size=size, dtype=np.uint8)
        acc = rng.integers(0, 256, size=size, dtype=np.uint8)
        expected = acc ^ ref_mul(77, data)
        gf_addmul_bytes(acc, 77, data)
        assert np.array_equal(acc, expected)


class TestMatmulBytesProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        rows=st.integers(1, 4),
        shards_n=st.integers(1, 4),
        length=st.integers(1, 48),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_matches_double_loop_reference(self, rows, shards_n, length, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 256, size=(rows, shards_n), dtype=np.uint8)
        shards = rng.integers(0, 256, size=(shards_n, length), dtype=np.uint8)
        expected = np.zeros((rows, length), dtype=np.uint8)
        for r in range(rows):
            for s in range(shards_n):
                expected[r] ^= ref_mul(int(matrix[r, s]), shards[s])
        assert np.array_equal(gf_matmul_bytes(matrix, shards), expected)

    def test_out_buffer_is_filled_and_returned(self):
        rng = np.random.default_rng(9)
        matrix = rng.integers(0, 256, size=(2, 3), dtype=np.uint8)
        shards = rng.integers(0, 256, size=(3, 64), dtype=np.uint8)
        out = np.full((2, 64), 0xAB, dtype=np.uint8)
        result = gf_matmul_bytes(matrix, shards, out=out)
        assert result is out
        assert np.array_equal(out, gf_matmul_bytes(matrix, shards))

    def test_zero_rows_clear_stale_out_contents(self):
        matrix = np.zeros((2, 2), dtype=np.uint8)
        shards = np.ones((2, 8), dtype=np.uint8)
        out = np.full((2, 8), 0xFF, dtype=np.uint8)
        gf_matmul_bytes(matrix, shards, out=out)
        assert not out.any()

    def test_out_aliasing_shards_rejected(self):
        shards = np.ones((2, 8), dtype=np.uint8)
        matrix = np.ones((2, 2), dtype=np.uint8)
        with pytest.raises(ValueError):
            gf_matmul_bytes(matrix, shards, out=shards)

    def test_out_shape_mismatch_rejected(self):
        shards = np.ones((2, 8), dtype=np.uint8)
        matrix = np.ones((3, 2), dtype=np.uint8)
        with pytest.raises(ValueError):
            gf_matmul_bytes(
                matrix, shards, out=np.zeros((2, 8), dtype=np.uint8)
            )


class TestBatchedCodec:
    @pytest.mark.parametrize("batch", [1, 2, 7])
    def test_encode_batch_matches_per_stripe(self, batch):
        codec = make_codec("rs(5,3)")
        rng = np.random.default_rng(batch)
        stripes = [
            [rng.bytes(512) for _ in range(codec.k)] for _ in range(batch)
        ]
        batched = codec.encode_batch(stripes)
        assert batched == [codec.encode(stripe) for stripe in stripes]

    def test_encode_batch_rejects_wrong_k(self):
        codec = make_codec("rs(5,3)")
        with pytest.raises(ValueError):
            codec.encode_batch([[b"x" * 8] * (codec.k - 1)])

    def test_encode_batch_rejects_unequal_sizes(self):
        codec = make_codec("rs(5,3)")
        with pytest.raises(ValueError):
            codec.encode_batch(
                [[b"x" * 8] * codec.k, [b"x" * 16] * codec.k]
            )

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), batch=st.integers(1, 6))
    def test_decode_batch_matches_per_stripe(self, seed, batch):
        """Mixed availability sets per stripe, grouped internally."""
        codec = make_codec("rs(5,3)")
        rng = np.random.default_rng(seed)
        coded = [
            codec.encode([rng.bytes(128) for _ in range(codec.k)])
            for _ in range(batch)
        ]
        stripes, wanted = [], []
        for chunks in coded:
            lost = sorted(
                rng.choice(codec.n, size=rng.integers(0, 3), replace=False)
            )
            available = {
                i: chunks[i] for i in range(codec.n) if i not in lost
            }
            stripes.append(available)
            wanted.append([int(i) for i in lost])
        batched = codec.decode_batch(stripes, wanted)
        expected = [
            codec.decode(avail, want)
            for avail, want in zip(stripes, wanted)
        ]
        assert batched == expected
        for chunks, rebuilt, want in zip(coded, batched, wanted):
            for index in want:
                assert rebuilt[index] == chunks[index]
