"""Background scrubbing: find and repair silently corrupted chunks.

The paper's motivation cites latent sector errors as a major failure
mode ("latent sector errors are commonly found in modern disks" [4]).
Erasure-coded stores counter them with periodic *scrubbing*: read every
chunk, compare against its known checksum, and reconstruct any chunk
whose bytes no longer match.

:class:`Scrubber` walks an :class:`~repro.runtime.testbed.
EmulatedTestbed`'s stores against the checksums captured at load time,
reports mismatches, and repairs them in place by decoding from the
stripe's healthy chunks.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..ec.codec import DecodeError


@dataclass(frozen=True)
class CorruptChunk:
    """One detected checksum mismatch."""

    stripe_id: int
    chunk_index: int
    node_id: int


@dataclass
class ScrubReport:
    """Outcome of one scrubbing pass."""

    chunks_checked: int = 0
    corrupt: List[CorruptChunk] = field(default_factory=list)
    repaired: List[CorruptChunk] = field(default_factory=list)
    unrepairable: List[CorruptChunk] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.corrupt


class Scrubber:
    """Checksum-verify (and optionally repair) every stored chunk.

    Args:
        testbed: supplies the stores, cluster metadata, the codec, and
            the load-time checksums that define "correct".
        throttled: charge scrub reads against the disks' rate limiters.
    """

    def __init__(self, testbed, throttled: bool = False):
        self.testbed = testbed
        self.throttled = throttled

    def scan(self) -> ScrubReport:
        """Verify every chunk of every stripe; no repairs."""
        report = ScrubReport()
        cluster = self.testbed.cluster
        for stripe in cluster.stripes():
            for index, node_id in enumerate(stripe.placement):
                expected = self.testbed._checksums.get(
                    (stripe.stripe_id, index)
                )
                if expected is None:
                    continue  # never loaded (e.g. synthetic stripe)
                store = self.testbed.stores[node_id]
                report.chunks_checked += 1
                if not store.has(stripe.stripe_id):
                    report.corrupt.append(
                        CorruptChunk(stripe.stripe_id, index, node_id)
                    )
                    continue
                data = store.read(stripe.stripe_id, throttled=self.throttled)
                if hashlib.sha256(data).hexdigest() != expected:
                    report.corrupt.append(
                        CorruptChunk(stripe.stripe_id, index, node_id)
                    )
        return report

    def scrub(self) -> ScrubReport:
        """Scan, then reconstruct every corrupt chunk in place."""
        report = self.scan()
        codec = self.testbed.codec
        cluster = self.testbed.cluster
        corrupt_keys = {(c.stripe_id, c.chunk_index) for c in report.corrupt}
        for corrupt in report.corrupt:
            stripe = cluster.stripe(corrupt.stripe_id)
            available = {}
            for index, node_id in enumerate(stripe.placement):
                if (corrupt.stripe_id, index) in corrupt_keys:
                    continue  # do not decode from corrupt sources
                store = self.testbed.stores[node_id]
                if store.has(corrupt.stripe_id):
                    available[index] = store.read(
                        corrupt.stripe_id, throttled=self.throttled
                    )
            try:
                rebuilt = codec.decode(available, [corrupt.chunk_index])
            except DecodeError:
                report.unrepairable.append(corrupt)
                continue
            self.testbed.stores[corrupt.node_id].put(
                corrupt.stripe_id,
                rebuilt[corrupt.chunk_index],
                throttled=self.throttled,
            )
            report.repaired.append(corrupt)
        return report
