"""Motivation bench: disk-failure prediction accuracy (Section II-B).

The paper's premise is that learned predictors reach >= 95% accuracy
with small false-alarm rates ([6], [18], [23], [45]) and days of lead
time.  This bench reproduces that comparison on the synthetic fleet:
a RAIDShield-style threshold rule vs logistic regression vs CART
(the model family of reference [18]).
"""

from conftest import run_once

from repro.bench.harness import Experiment, Panel
from repro.failure.cart import CartPredictor
from repro.failure.predictor import (
    LogisticPredictor,
    ThresholdPredictor,
    evaluate,
)
from repro.failure.smart import SmartTraceGenerator


def run_predictor_comparison() -> Experiment:
    exp = Experiment(
        "predictors",
        "Failure-prediction accuracy on the synthetic fleet",
    )
    fleet = SmartTraceGenerator(
        500, horizon_days=120, annual_failure_rate=0.25, seed=7
    ).generate()
    train, test = fleet[:350], fleet[350:]
    models = [
        ("threshold", ThresholdPredictor(threshold=20.0)),
        ("logistic", LogisticPredictor(seed=0).fit(train)),
        ("cart", CartPredictor().fit(train)),
    ]
    panel = Panel(
        "Per-disk evaluation on the held-out fleet",
        "model",
        ylabel="rate / days",
    )
    for name, model in models:
        metrics = evaluate(model, test)
        panel.add_point(
            name,
            {
                "precision": metrics.precision,
                "recall": metrics.recall,
                "false_alarm_rate": metrics.false_alarm_rate,
                "lead_days": metrics.mean_lead_days,
            },
        )
    exp.panels.append(panel)
    return exp


def test_predictor_comparison(benchmark, save_result):
    exp = run_once(benchmark, run_predictor_comparison)
    save_result(exp)
    panel = exp.panels[0]
    rows = {
        xtick: {
            series.label: series.values[i] for series in panel.series
        }
        for i, xtick in enumerate(panel.xticks)
    }
    # The learned models reach the literature's >= 90% regime with
    # useful lead time.
    for model in ("logistic", "cart"):
        assert rows[model]["precision"] >= 0.9, rows[model]
        assert rows[model]["recall"] >= 0.85, rows[model]
        assert rows[model]["false_alarm_rate"] <= 0.05
        assert rows[model]["lead_days"] >= 3.0
    # The threshold rule pays in false alarms relative to the learned
    # models (RAIDShield-style single-attribute cutoffs are coarse).
    assert (
        rows["threshold"]["false_alarm_rate"]
        >= rows["logistic"]["false_alarm_rate"]
    )
