"""Figure 3: mathematical analysis, hot-standby repair.

Paper claims reproduced here:

* predictive repair beats reactive repair for every M and h;
* with h=3, predictive repair reduces the repair time by ~41%
  (paper: 41.3%);
* the gain shrinks as more hot-standby nodes are added;
* repair time is nearly flat in M (the standbys are the bottleneck).
"""

from conftest import run_once

from repro.bench.experiments import fig3_math_hotstandby
from repro.bench.harness import reduction


def test_fig3_math_hotstandby(benchmark, save_result):
    exp = run_once(benchmark, fig3_math_hotstandby)
    save_result(exp)

    for panel in exp.panels:
        for p, r in zip(panel.values_of("predictive"), panel.values_of("reactive")):
            assert p < r

    panel_a = exp.panel("Fig 3(a) — varying M")
    reactive = panel_a.values_of("reactive")
    assert max(reactive) / min(reactive) < 1.3, "nearly flat in M"

    panel_b = exp.panel("Fig 3(b) — varying h")
    gains = [
        reduction(r, p)
        for r, p in zip(
            panel_b.values_of("reactive"), panel_b.values_of("predictive")
        )
    ]
    # h=3: paper reports 41.3%.
    assert 0.33 < gains[0] < 0.50
    assert gains[0] > gains[-1], "gain shrinks with more standbys"
    # Repair time decreases monotonically with h.
    for series in ("predictive", "reactive"):
        values = panel_b.values_of(series)
        assert values == sorted(values, reverse=True)
