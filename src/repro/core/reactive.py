"""Conventional reactive repair of actually-failed nodes.

FastPR assumes a *soon-to-fail* node that is still readable.  When a
node dies without warning (a missed prediction), or several nodes fail
inside the same stripe, the paper falls back to conventional reactive
repair: pure reconstruction from the surviving chunks (Section II-B,
assumptions).  This module implements that fallback:

* :func:`plan_failed_node_repair` — single failed node: like
  reconstruction-only FastPR, but the failed node can neither migrate
  nor serve as a helper.
* :class:`MultiFailureRepairPlanner` — several failed nodes: stripes
  may have lost up to ``n - k`` chunks each; every lost chunk is
  reconstructed from ``k`` surviving chunks, scheduled in rounds where
  each healthy node serves at most one chunk transfer.

Both produce ordinary :class:`~repro.core.plan.RepairPlan` objects, so
the simulators and the emulated testbed execute them unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..cluster.chunk import ChunkLocation, NodeId, StripeId
from ..cluster.cluster import StorageCluster
from .matching import IncrementalStripeMatcher
from .placement import HotStandbyPlacer, assign_scattered_destinations
from .plan import (
    ChunkRepairAction,
    RepairMethod,
    RepairPlan,
    RepairRound,
    RepairScenario,
)
from .planner import ReconstructionOnlyPlanner


class UnrecoverableStripeError(RuntimeError):
    """A stripe lost more than ``n - k`` chunks; data is gone."""


def plan_failed_node_repair(
    cluster: StorageCluster,
    failed_node: NodeId,
    scenario: RepairScenario = RepairScenario.SCATTERED,
    seed: Optional[int] = None,
) -> RepairPlan:
    """Reactive repair of one failed node.

    Identical to the reconstruction-only baseline (the failed node is
    excluded from helpers automatically because its state is FAILED).
    The node should be marked failed before calling, so helper and
    destination selection skip it.
    """
    if not cluster.node(failed_node).is_failed:
        raise ValueError(
            f"node {failed_node} is not failed; use a predictive planner "
            "for soon-to-fail nodes"
        )
    planner = ReconstructionOnlyPlanner(scenario=scenario, seed=seed)
    return planner.plan(cluster, failed_node)


class MultiFailureRepairPlanner:
    """Reactive repair across several simultaneously failed nodes.

    For every stripe touching a failed node, all of its lost chunks are
    reconstructed.  A stripe that lost ``f`` chunks still needs only
    ``k`` surviving helpers (one decode rebuilds all ``f``), but each
    lost chunk is written to a distinct destination.

    Scheduling greedily packs rounds: a (stripe, lost-chunk) unit joins
    the current round if its stripe's ``k`` helpers can be matched
    without reusing a node (the same matching discipline as
    Algorithm 1's MATCH).

    Args:
        scenario: where repaired chunks go.
        seed: randomizes destination tie-breaking via the cluster's
            placement machinery.
    """

    def __init__(
        self,
        scenario: RepairScenario = RepairScenario.SCATTERED,
        seed: Optional[int] = None,
    ):
        self.scenario = scenario
        self.seed = seed

    def plan(
        self, cluster: StorageCluster, failed_nodes: Sequence[NodeId]
    ) -> List[RepairPlan]:
        """Build one plan per failed node (chunks grouped by owner).

        Returns plans in ``failed_nodes`` order; executing them in any
        order is safe because helpers always come from healthy nodes.

        Raises:
            UnrecoverableStripeError: if any stripe lost > n - k chunks.
        """
        failed = list(dict.fromkeys(failed_nodes))
        for node_id in failed:
            if not cluster.node(node_id).is_failed:
                raise ValueError(f"node {node_id} is not marked failed")
        self._check_recoverable(cluster, failed)
        # Reserve destinations across the per-node plans so two plans
        # never place two chunks of one stripe on the same node.
        reservations: Dict[StripeId, Set[NodeId]] = {}
        return [
            self._plan_for_node(cluster, node, failed, reservations)
            for node in failed
        ]

    # ------------------------------------------------------------------

    def _check_recoverable(
        self, cluster: StorageCluster, failed: List[NodeId]
    ) -> None:
        failed_set = set(failed)
        for stripe in cluster.stripes():
            lost = [n for n in stripe.placement if n in failed_set]
            if len(lost) > stripe.n - stripe.k:
                raise UnrecoverableStripeError(
                    f"stripe {stripe.stripe_id} lost {len(lost)} chunks; "
                    f"only {stripe.n - stripe.k} are tolerable"
                )

    def _plan_for_node(
        self,
        cluster: StorageCluster,
        failed_node: NodeId,
        all_failed: List[NodeId],
        reservations: Dict[StripeId, Set[NodeId]],
    ) -> RepairPlan:
        chunks = cluster.chunks_on_node(failed_node)
        plan = RepairPlan(stf_node=failed_node, scenario=self.scenario)
        if not chunks:
            return plan
        ks = {cluster.stripe(c.stripe_id).k for c in chunks}
        if len(ks) != 1:
            raise ValueError("multi-failure repair requires a uniform code")
        k = ks.pop()
        standby_placer = None
        if self.scenario is RepairScenario.HOT_STANDBY:
            standby_placer = HotStandbyPlacer(cluster)
        pending: List[ChunkLocation] = list(chunks)
        index = 0
        while pending:
            round_chunks, assignments, pending = self._pack_round(
                cluster, pending, k, all_failed
            )
            plan.rounds.append(
                self._build_round(
                    cluster,
                    index,
                    round_chunks,
                    assignments,
                    standby_placer,
                    reservations,
                )
            )
            index += 1
        return plan

    def _pack_round(
        self,
        cluster: StorageCluster,
        pending: List[ChunkLocation],
        k: int,
        all_failed: List[NodeId],
    ) -> Tuple[List[ChunkLocation], Dict[StripeId, List[NodeId]], List[ChunkLocation]]:
        matcher = IncrementalStripeMatcher(k)
        taken: List[ChunkLocation] = []
        rest: List[ChunkLocation] = []
        seen_stripes: Set[StripeId] = set()
        for chunk in pending:
            # One decode per stripe per round suffices for all of that
            # stripe's losses on this node; different failed nodes get
            # their own plans.
            if chunk.stripe_id in seen_stripes:
                rest.append(chunk)
                continue
            helpers = cluster.helper_nodes(
                chunk.stripe_id, exclude=set(all_failed)
            )
            if len(helpers) < k:
                raise UnrecoverableStripeError(
                    f"stripe {chunk.stripe_id}: only {len(helpers)} healthy "
                    f"helpers, need {k}"
                )
            if matcher.try_add(chunk.stripe_id, helpers):
                taken.append(chunk)
                seen_stripes.add(chunk.stripe_id)
            else:
                rest.append(chunk)
        if not taken:
            raise AssertionError("round packing made no progress")
        return taken, matcher.assignment(), rest

    def _build_round(
        self,
        cluster: StorageCluster,
        index: int,
        round_chunks: List[ChunkLocation],
        assignments: Dict[StripeId, List[NodeId]],
        standby_placer: Optional[HotStandbyPlacer],
        reservations: Dict[StripeId, Set[NodeId]],
    ) -> RepairRound:
        if standby_placer is not None:
            destinations = standby_placer.assign(round_chunks)
        else:
            destinations = assign_scattered_destinations(
                cluster,
                round_chunks[0].node_id,
                round_chunks,
                stripe_reservations=reservations,
            )
            for (stripe_id, _), node in destinations.items():
                reservations.setdefault(stripe_id, set()).add(node)
        round_ = RepairRound(index=index)
        for chunk in round_chunks:
            round_.reconstructions.append(
                ChunkRepairAction(
                    stripe_id=chunk.stripe_id,
                    chunk_index=chunk.chunk_index,
                    method=RepairMethod.RECONSTRUCTION,
                    sources=tuple(assignments[chunk.stripe_id]),
                    destination=destinations[(chunk.stripe_id, chunk.chunk_index)],
                )
            )
        return round_


def replan_after_midrepair_failure(
    cluster: StorageCluster,
    plan: RepairPlan,
    completed_rounds: int,
    seed: Optional[int] = None,
) -> RepairPlan:
    """Re-plan when the STF node dies partway through its repair.

    The paper assumes the STF node stays readable "until it actually
    fails" — if it fails after ``completed_rounds`` rounds, the chunks
    of the remaining rounds can no longer migrate and every one of them
    must be reconstructed.  The STF node must already be marked failed
    (so helper selection skips it); the completed rounds' metadata
    updates are the caller's responsibility (apply them round by round
    as the coordinator receives ACKs).

    Returns a reconstruction-only plan covering exactly the unfinished
    chunks.
    """
    if not cluster.node(plan.stf_node).is_failed:
        raise ValueError(
            f"node {plan.stf_node} is not marked failed; nothing to replan"
        )
    if not 0 <= completed_rounds <= plan.num_rounds:
        raise ValueError(
            f"completed_rounds={completed_rounds} outside "
            f"[0, {plan.num_rounds}]"
        )
    remaining: List[ChunkLocation] = []
    for round_ in plan.rounds[completed_rounds:]:
        for action in round_.actions():
            remaining.append(
                ChunkLocation(
                    action.stripe_id, action.chunk_index, plan.stf_node
                )
            )
    planner = ReconstructionOnlyPlanner(scenario=plan.scenario, seed=seed)
    return planner.plan(cluster, plan.stf_node, chunks=remaining)


def repair_after_failures(
    cluster: StorageCluster,
    failed_nodes: Iterable[NodeId],
    scenario: RepairScenario = RepairScenario.SCATTERED,
    seed: Optional[int] = None,
) -> List[RepairPlan]:
    """Mark nodes failed and plan their reactive repair in one call."""
    failed = list(failed_nodes)
    for node_id in failed:
        cluster.node(node_id).mark_failed()
    if len(failed) == 1:
        return [
            plan_failed_node_repair(
                cluster, failed[0], scenario=scenario, seed=seed
            )
        ]
    planner = MultiFailureRepairPlanner(scenario=scenario, seed=seed)
    return planner.plan(cluster, failed)
