"""Emulated coordinator/agent testbed (the EC2/HDFS substitute)."""

from .agent import Agent, AgentError
from .client import ClientStats, StorageClient
from .config import DEFAULT_CONFIG, RuntimeConfig
from .scrub import CorruptChunk, ScrubReport, Scrubber
from .coordinator import (
    COORDINATOR_ID,
    Coordinator,
    RepairFailedError,
    RepairTimeoutError,
    RuntimeResult,
)
from .datanode import ChunkStore
from .faults import (
    CrashFault,
    FaultInjector,
    FaultPlan,
    LinkFault,
    PacketFate,
    SlowNicFault,
)
from .messages import (
    ACK_FAILED,
    ACK_OK,
    ActionKey,
    DataPacket,
    Heartbeat,
    Ping,
    Pong,
    ReceiveCommand,
    RelayCommand,
    RepairAck,
    SendCommand,
    Shutdown,
    WriteComplete,
    nack,
)
from .testbed import EmulatedTestbed, VerificationError
from .throttle import RateLimiter, reserve_transfer, sleep_until
from .transport import Endpoint, Network

__all__ = [
    "ACK_FAILED",
    "ACK_OK",
    "ActionKey",
    "Agent",
    "AgentError",
    "COORDINATOR_ID",
    "ChunkStore",
    "ClientStats",
    "CorruptChunk",
    "CrashFault",
    "DEFAULT_CONFIG",
    "ScrubReport",
    "Scrubber",
    "StorageClient",
    "Coordinator",
    "DataPacket",
    "EmulatedTestbed",
    "Endpoint",
    "FaultInjector",
    "FaultPlan",
    "Heartbeat",
    "LinkFault",
    "Network",
    "PacketFate",
    "Ping",
    "Pong",
    "RateLimiter",
    "ReceiveCommand",
    "RelayCommand",
    "RepairAck",
    "RepairFailedError",
    "RepairTimeoutError",
    "RuntimeConfig",
    "RuntimeResult",
    "SendCommand",
    "Shutdown",
    "SlowNicFault",
    "WriteComplete",
    "VerificationError",
    "nack",
    "reserve_transfer",
    "sleep_until",
]
