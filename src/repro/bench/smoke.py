"""One instrumented repair, summarized as ``BENCH_repair_rounds.json``.

CI's ``bench-smoke`` job runs this module against a small synthetic
cluster and uploads the result as an artifact, so every commit carries
a machine-readable record of what one repair round actually costs on
the emulated testbed: per-round durations, the migration versus
reconstruction split, and the headline transport/agent counters.  The
document rides on :class:`repro.core.serde.Schema`, and the generated
file is schema-validated before it is written — an empty or malformed
run fails the job instead of uploading garbage.

The module also measures the socket transport itself: a loopback
:class:`~repro.net.TcpNetwork` streams DataPacket frames at 64 KiB and
1 MiB payloads, and the frames/s + MB/s land in
``BENCH_net_throughput.json`` — so a wire-codec or event-loop
regression shows up as a number, not a hunch.

Usage::

    python -m repro.bench.smoke -o BENCH_repair_rounds.json \
        --net-output BENCH_net_throughput.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional, Sequence

from ..core.serde import Schema

#: Counters copied verbatim into the bench document.  A short, stable
#: list — the full registry goes to ``--metrics-out`` on real runs; the
#: bench file only tracks the totals worth eyeballing across commits.
_HEADLINE_COUNTERS = (
    "repair_actions_total",
    "repair_retries_total",
    "repair_replans_total",
    "agent_bytes_sent_total",
    "agent_bytes_received_total",
    "transport_bytes_sent_total",
)

BENCH_SCHEMA = Schema(
    "bench-repair-rounds",
    version=1,
    fields=("config", "result", "rounds", "counters"),
    required=("config", "result", "rounds", "counters"),
)


def run_smoke(seed: int = 7) -> dict:
    """Run one small instrumented repair and return the bench document.

    The cluster shape matches the test fixtures (12 nodes, RS(5,3),
    64 KiB chunks) but with enough stripes that the repair spans
    multiple rounds, so the per-round breakdown is never trivial.
    """
    from ..cluster import StorageCluster
    from ..core.plan import RepairScenario
    from ..core.planner import FastPRPlanner
    from ..ec import make_codec
    from ..obs import MetricsRegistry, Tracer, breakdown_from_trace
    from ..runtime.testbed import EmulatedTestbed

    nodes, stripes, stf = 12, 20, 2
    codec = make_codec("rs(5,3)")
    cluster = StorageCluster.random(
        nodes, stripes, codec.n, codec.k, seed=seed, chunk_size=1 << 16
    )
    cluster.node(stf).mark_soon_to_fail()
    plan = FastPRPlanner(
        scenario=RepairScenario.SCATTERED, seed=seed
    ).plan(cluster, stf)
    plan.validate(cluster)

    metrics = MetricsRegistry()
    tracer = Tracer()
    with EmulatedTestbed(
        cluster, codec, metrics=metrics, tracer=tracer
    ) as testbed:
        testbed.load_random_data(seed=seed)
        result = testbed.execute(plan)
        testbed.verify_plan(plan, result)

    breakdown = breakdown_from_trace(tracer.to_dict())
    counters = {
        metric.name: metric.total()
        for metric in metrics
        if metric.name in _HEADLINE_COUNTERS
    }
    body = {
        "config": {
            "nodes": nodes,
            "stripes": stripes,
            "code": f"rs({codec.n},{codec.k})",
            "chunk_size": cluster.chunk_size,
            "seed": seed,
            "stf": stf,
            "scenario": RepairScenario.SCATTERED.value,
        },
        "result": {
            "chunks_repaired": result.chunks_repaired,
            "total_time_s": result.total_time,
            "bytes_transferred": result.bytes_transferred,
            "retries": result.retries,
            "replans": result.replans,
        },
        "rounds": [r.to_dict() for r in breakdown.rounds],
        "counters": counters,
    }
    return BENCH_SCHEMA.dump(body)


def validate(document: dict) -> dict:
    """Schema-check a bench document; reject empty-round runs."""
    body = BENCH_SCHEMA.load(document)
    if not body["rounds"]:
        raise ValueError("bench document has no repair rounds")
    if body["result"]["chunks_repaired"] <= 0:
        raise ValueError("bench repair recovered no chunks")
    return body


NET_BENCH_SCHEMA = Schema(
    "bench-net-throughput",
    version=1,
    fields=("transport", "runs"),
    required=("transport", "runs"),
)

#: payload sizes the throughput sweep always covers
_NET_PAYLOAD_SIZES = (1 << 16, 1 << 20)  # 64 KiB, 1 MiB


def run_net_throughput(
    sizes: Sequence[int] = _NET_PAYLOAD_SIZES, frames: int = 32
) -> dict:
    """Stream frames over a loopback TCP socket; return the bench doc.

    Endpoints attach unthrottled (``bandwidth=None``), so the numbers
    measure the wire codec + asyncio socket path, not the emulated NIC.
    """
    from ..net import TcpNetwork
    from ..runtime.messages import DataPacket

    runs = []
    for size in sizes:
        net = TcpNetwork(send_queue_capacity=128)
        try:
            net.attach(0, None)
            net.attach(1, None)
            host, port = net.listen()
            net.add_peer(1, host, port)
            payload = bytes(size)
            inbox = net.endpoint(1).inbox
            # one warm-up frame establishes the connection off the clock
            net.send(0, 1, DataPacket(0, 0, 0, 0, payload))
            inbox.get(timeout=60)
            started = time.perf_counter()
            for i in range(frames):
                net.send(0, 1, DataPacket(0, 0, 0, i * size, payload))
            for _ in range(frames):
                inbox.get(timeout=60)
            elapsed = time.perf_counter() - started
        finally:
            net.close()
        runs.append(
            {
                "payload_bytes": size,
                "frames": frames,
                "seconds": elapsed,
                "frames_per_s": frames / elapsed,
                "mb_per_s": frames * size / elapsed / 1e6,
            }
        )
    return NET_BENCH_SCHEMA.dump({"transport": "tcp-loopback", "runs": runs})


def validate_net(document: dict) -> dict:
    """Schema-check a net-throughput document; reject empty sweeps."""
    body = NET_BENCH_SCHEMA.load(document)
    if not body["runs"]:
        raise ValueError("net bench document has no runs")
    for run in body["runs"]:
        if run["frames"] <= 0 or run["mb_per_s"] <= 0:
            raise ValueError(f"degenerate net bench run: {run}")
    return body


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.smoke", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="cluster/data RNG seed"
    )
    parser.add_argument(
        "-o",
        "--output",
        default="BENCH_repair_rounds.json",
        help="where to write the bench document",
    )
    parser.add_argument(
        "--net-output",
        default="BENCH_net_throughput.json",
        help="where to write the loopback TCP throughput document "
        "('' skips the sweep)",
    )
    parser.add_argument(
        "--net-frames",
        type=int,
        default=32,
        help="frames streamed per payload size in the throughput sweep",
    )
    args = parser.parse_args(argv)
    document = run_smoke(seed=args.seed)
    validate(document)
    with open(args.output, "w") as f:
        json.dump(document, f, indent=2, sort_keys=True)
        f.write("\n")
    rounds = document["rounds"]
    print(
        f"wrote {args.output}: {document['result']['chunks_repaired']} "
        f"chunks over {len(rounds)} rounds, "
        f"{document['result']['total_time_s']:.2f}s total"
    )
    if args.net_output:
        net_doc = run_net_throughput(frames=args.net_frames)
        validate_net(net_doc)
        with open(args.net_output, "w") as f:
            json.dump(net_doc, f, indent=2, sort_keys=True)
            f.write("\n")
        for run in net_doc["runs"]:
            print(
                f"wrote {args.net_output}: {run['payload_bytes']} B frames "
                f"at {run['frames_per_s']:.0f} frames/s, "
                f"{run['mb_per_s']:.1f} MB/s"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
