"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.events import (
    Acquire,
    Delay,
    Release,
    Resource,
    Simulation,
    SimulationError,
    use,
)


class TestDelays:
    def test_single_process(self):
        sim = Simulation()
        log = []

        def proc():
            yield Delay(5.0)
            log.append(sim.now)

        sim.spawn(proc())
        assert sim.run() == pytest.approx(5.0)
        assert log == [pytest.approx(5.0)]

    def test_parallel_processes_overlap(self):
        sim = Simulation()

        def proc(duration):
            yield Delay(duration)

        sim.spawn(proc(3.0))
        sim.spawn(proc(7.0))
        assert sim.run() == pytest.approx(7.0)

    def test_sequential_delays_accumulate(self):
        sim = Simulation()

        def proc():
            yield Delay(2.0)
            yield Delay(3.0)

        sim.spawn(proc())
        assert sim.run() == pytest.approx(5.0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Delay(-1.0)

    def test_on_done_callback(self):
        sim = Simulation()
        done_at = []

        def proc():
            yield Delay(4.0)

        sim.spawn(proc(), on_done=done_at.append)
        sim.run()
        assert done_at == [pytest.approx(4.0)]


class TestResources:
    def test_exclusive_use_serializes(self):
        sim = Simulation()
        resource = Resource("disk")
        finish = []

        def proc():
            yield Acquire(resource)
            yield Delay(2.0)
            yield Release(resource)
            finish.append(sim.now)

        sim.spawn(proc())
        sim.spawn(proc())
        sim.run()
        assert finish == [pytest.approx(2.0), pytest.approx(4.0)]

    def test_fifo_ordering(self):
        sim = Simulation()
        resource = Resource("r")
        order = []

        def proc(name, start_delay):
            yield Delay(start_delay)
            yield Acquire(resource)
            order.append(name)
            yield Delay(1.0)
            yield Release(resource)

        sim.spawn(proc("b", 0.2))
        sim.spawn(proc("a", 0.1))
        sim.run()
        assert order == ["a", "b"]

    def test_busy_time_accounting(self):
        sim = Simulation()
        resource = Resource("r")

        def proc():
            yield Acquire(resource)
            yield Delay(3.0)
            yield Release(resource)

        sim.spawn(proc())
        sim.spawn(proc())
        sim.run()
        assert resource.busy_time == pytest.approx(6.0)

    def test_release_unheld_raises(self):
        sim = Simulation()
        resource = Resource("r")

        def bad():
            yield Release(resource)

        sim.spawn(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_two_resources_held_simultaneously(self):
        sim = Simulation()
        a, b = Resource("a"), Resource("b")
        blocked_at = []

        def holder():
            yield Acquire(a)
            yield Acquire(b)
            yield Delay(2.0)
            yield Release(b)
            yield Release(a)

        def waiter():
            yield Delay(0.5)
            yield Acquire(b)
            blocked_at.append(sim.now)
            yield Release(b)

        sim.spawn(holder())
        sim.spawn(waiter())
        sim.run()
        assert blocked_at == [pytest.approx(2.0)]

    def test_use_helper(self):
        sim = Simulation()
        resource = Resource("r")

        def proc():
            yield from use(resource, 1.5)
            yield from use(resource, 1.5)

        sim.spawn(proc())
        assert sim.run() == pytest.approx(3.0)

    def test_unknown_command(self):
        sim = Simulation()

        def bad():
            yield "not-a-command"

        sim.spawn(bad())
        with pytest.raises(SimulationError):
            sim.run()
