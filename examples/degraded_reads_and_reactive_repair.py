#!/usr/bin/env python3
"""What happens when prediction misses: degraded reads + reactive repair.

A node dies with no warning.  Until reactive repair finishes, clients
reading its chunks pay the k-fold degraded-read penalty — the cost
FastPR's predictive repair avoids.  This example measures that penalty
on the emulated testbed, runs the reactive (reconstruction-only) repair
of the dead node, and shows reads returning to normal.

Run:
    python examples/degraded_reads_and_reactive_repair.py
"""

from repro import EmulatedTestbed, StorageClient, make_codec
from repro.cluster import StorageCluster
from repro.core import apply_plan, plan_failed_node_repair


def main() -> None:
    cluster = StorageCluster.random(
        num_nodes=12,
        num_stripes=20,
        n=9,
        k=6,
        seed=2,
        disk_bandwidth=50e6,
        network_bandwidth=220e6,
        chunk_size=512 * 1024,
    )
    codec = make_codec("rs(9,6)")
    victim = max(cluster.storage_node_ids(), key=cluster.load_of)

    with EmulatedTestbed(cluster, codec, packet_size=64 * 1024) as testbed:
        testbed.load_random_data(seed=3)
        client = StorageClient(testbed)

        # 1. Healthy reads of the victim's chunks.
        victim_chunks = cluster.chunks_on_node(victim)
        for chunk in victim_chunks[:3]:
            client.read(chunk.stripe_id, chunk.chunk_index)
        healthy_fetched = client.stats.bytes_fetched
        print(
            f"healthy: read 3 chunks from node {victim}, fetched "
            f"{healthy_fetched >> 10} KiB ({client.stats.direct_reads} direct)"
        )

        # 2. The node dies without warning (a missed prediction).
        cluster.node(victim).mark_failed()
        before = client.stats.bytes_fetched
        for chunk in victim_chunks[:3]:
            client.read(chunk.stripe_id, chunk.chunk_index)
        degraded_fetched = client.stats.bytes_fetched - before
        print(
            f"after failure: same 3 reads now fetch "
            f"{degraded_fetched >> 10} KiB "
            f"({client.stats.degraded_reads} degraded reads, "
            f"{degraded_fetched // max(healthy_fetched, 1)}x amplification)"
        )

        # 3. Reactive repair (the paper's fallback for missed failures).
        plan = plan_failed_node_repair(cluster, victim, seed=0)
        result = testbed.execute(plan)
        testbed.verify_plan(plan)
        apply_plan(cluster, plan)
        print(
            f"reactive repair: {plan.total_chunks} chunks reconstructed in "
            f"{result.total_time:.2f}s over {plan.num_rounds} rounds (verified)"
        )

        # 4. Reads are direct again (metadata points at the new copies).
        before_direct = client.stats.direct_reads
        for chunk in victim_chunks[:3]:
            client.read(chunk.stripe_id, chunk.chunk_index)
        print(
            f"after repair: {client.stats.direct_reads - before_direct} of 3 "
            "reads served directly — no decoding needed"
        )


if __name__ == "__main__":
    main()
