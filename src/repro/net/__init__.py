"""repro.net — versioned wire protocol + TCP transport (DESIGN.md §10).

The runtime's messages travel either over the in-memory fabric
(:class:`repro.runtime.transport.Network`) or, via this package, over
real sockets between separate OS processes: :mod:`repro.net.wire`
defines the length-prefixed CRC-checked frame format and
:class:`repro.net.tcp.TcpNetwork` implements the shared
:class:`~repro.runtime.transport.Transport` interface on asyncio TCP.
:mod:`repro.net.launch` holds the process-per-node drivers behind
``fastpr agent`` and ``fastpr repair --transport tcp``.
"""

import functools
import warnings

from . import launch as _launch
from .launch import (
    COORDINATOR_ALIAS,
    PeerSpecError,
    allocate_ports,
    format_peer_spec,
    load_node_data,
    parse_peer_spec,
    run_agent_process,
    run_shm_agent_process,
    sharded_peer_spec,
    shm_ring_name,
    stripe_checksums,
)


def _deprecated_driver(func):
    """One-release shim: the per-transport drivers moved behind
    :class:`repro.RepairSession`; these names keep working for one
    release but warn on every call."""

    @functools.wraps(func)
    def wrapper(*args, **kwargs):
        warnings.warn(
            f"repro.net.{func.__name__} is deprecated; use "
            "repro.RepairSession(..., transport=...) instead "
            "(removal after one release)",
            DeprecationWarning,
            stacklevel=2,
        )
        return func(*args, **kwargs)

    return wrapper


run_tcp_repair = _deprecated_driver(_launch.run_tcp_repair)
run_shm_repair = _deprecated_driver(_launch.run_shm_repair)
run_tcp_multicoord_repair = _deprecated_driver(
    _launch.run_tcp_multicoord_repair
)
from .shm import ShmNetwork, ShmRing, shm_available
from .tcp import TcpNetwork
from .wire import (
    HEADER,
    MAGIC,
    MAX_META,
    MAX_PAYLOAD,
    WIRE_VERSION,
    WireError,
    decode_frame,
    encode_frame,
    encode_frame_parts,
)

__all__ = [
    "COORDINATOR_ALIAS",
    "HEADER",
    "MAGIC",
    "MAX_META",
    "MAX_PAYLOAD",
    "PeerSpecError",
    "ShmNetwork",
    "ShmRing",
    "TcpNetwork",
    "WIRE_VERSION",
    "WireError",
    "allocate_ports",
    "decode_frame",
    "encode_frame",
    "encode_frame_parts",
    "shm_available",
    "format_peer_spec",
    "load_node_data",
    "parse_peer_spec",
    "run_agent_process",
    "run_shm_agent_process",
    "run_shm_repair",
    "run_tcp_multicoord_repair",
    "run_tcp_repair",
    "sharded_peer_spec",
    "shm_ring_name",
    "stripe_checksums",
]
