"""Durable write-ahead journal for crash-recoverable repairs.

The coordinator holds the whole repair plan and its round progress in
memory; if the coordinator process dies mid-repair, that state must be
reconstructible or a restarted run will redo (or double-apply) work the
cluster already paid for.  :class:`RepairJournal` is the durability
layer: an append-only log of typed records, each framed as::

    [u32 payload length][u32 CRC32 of payload][payload: UTF-8 JSON]

Records are appended *before* the state transition they describe is
acted on (write-ahead).  Replay (:meth:`RepairJournal.replay`) walks
frames until the first short or CRC-mismatched one — a torn tail from
a crash mid-write — and truncates the file back to the last complete
record, so a recovered coordinator appends to a clean tail.

Record vocabulary (see ``repro.runtime.coordinator``):

* :class:`PlanCommitted` — the full serialized plan, the coordinator's
  epoch and the packet size; the first record of every (re)incarnation.
* :class:`RoundStarted` / :class:`RoundCompleted` — round brackets.
* :class:`ActionCompleted` — one chunk durably repaired; carries the
  *executed* (possibly healed) action so recovery knows the effective
  destination.
* :class:`RepairFinished` — the terminal record; replaying a finished
  journal is a no-op (idempotent recovery).

The fsync policy is configurable via
:attr:`~repro.runtime.config.RuntimeConfig.journal_fsync`: ``"always"``
fsyncs every append (a crash loses at most the record being written),
``"never"`` leaves flushing to the OS (faster, used by tests and
benches that only need crash *points*, not power-failure durability).

Deterministic crash injection: ``crash_after_records=N`` makes the
journal raise :class:`CoordinatorCrash` immediately *after* the N-th
append hits the file — the record is on disk, the coordinator dies
before acting on it — which is exactly the window the crash-point sweep
tests iterate over.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Type, Union

_HEADER = struct.Struct("<II")


class JournalError(RuntimeError):
    """Raised on a structurally unusable journal (not on torn tails)."""


class CoordinatorCrash(RuntimeError):
    """Injected coordinator death (crash_after_records tripped)."""

    def __init__(self, records_written: int):
        self.records_written = records_written
        super().__init__(
            f"coordinator crashed after journal record {records_written}"
        )


# ----------------------------------------------------------------------
# record types
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PlanCommitted:
    """The plan (serialized via ``RepairPlan.to_dict``) is committed."""

    epoch: int
    plan: Dict[str, Any]
    packet_size: int


@dataclass(frozen=True)
class RoundStarted:
    """The coordinator is about to issue round ``round_index``."""

    epoch: int
    round_index: int


@dataclass(frozen=True)
class ActionCompleted:
    """One chunk repair ACKed and durably written at its destination.

    ``action`` is the executed (possibly healed) action via
    ``ChunkRepairAction`` serialization, so recovery reconciles against
    the *effective* destination, not the planned one.
    """

    epoch: int
    round_index: int
    action: Dict[str, Any]
    attempt: int


@dataclass(frozen=True)
class SliceCompleted:
    """One slice of a chained (pipelined) reconstruction assembled.

    Sliced repairs stream partial sums through a helper chain; the
    destination reports each completed slice and the coordinator
    journals it, so a post-crash operator can see exactly how far a
    partial reconstruction got.  Purely informational for recovery:
    only a chunk-level :class:`ActionCompleted` marks durable progress
    (a partially sliced chunk is re-reconstructed from scratch).
    """

    epoch: int
    round_index: int
    stripe_id: int
    chunk_index: int
    slice_index: int
    num_slices: int
    attempt: int


@dataclass(frozen=True)
class RoundCompleted:
    """Every action of round ``round_index`` is complete."""

    epoch: int
    round_index: int


@dataclass(frozen=True)
class RepairFinished:
    """The whole plan is repaired; the journal is terminal."""

    epoch: int


@dataclass(frozen=True)
class ShardTakeover:
    """A surviving coordinator adopted this shard after its owner died.

    Appended by the successor (under its bumped ``epoch``) right after
    journal replay, before any re-issued command — so the journal
    itself shows who owned the shard when.  ``adopter`` is the shard
    whose coordinator performed the takeover (or ``-1`` when the
    orchestrating driver did it directly).
    """

    epoch: int
    shard: int
    adopter: int


JournalRecord = Union[
    PlanCommitted,
    RoundStarted,
    ActionCompleted,
    SliceCompleted,
    RoundCompleted,
    RepairFinished,
    ShardTakeover,
]

_RECORD_TYPES: Dict[str, Type[JournalRecord]] = {
    "plan_committed": PlanCommitted,
    "round_started": RoundStarted,
    "action_completed": ActionCompleted,
    "slice_completed": SliceCompleted,
    "round_completed": RoundCompleted,
    "repair_finished": RepairFinished,
    "shard_takeover": ShardTakeover,
}
_TYPE_NAMES = {cls: name for name, cls in _RECORD_TYPES.items()}


def encode_record(record: JournalRecord) -> bytes:
    """Frame one record: length + CRC32 header, JSON payload."""
    name = _TYPE_NAMES.get(type(record))
    if name is None:
        raise JournalError(f"unknown journal record type {type(record)!r}")
    payload = json.dumps(
        {"type": name, **asdict(record)}, separators=(",", ":")
    ).encode("utf-8")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_payload(payload: bytes) -> JournalRecord:
    document = json.loads(payload.decode("utf-8"))
    cls = _RECORD_TYPES.get(document.pop("type", None))
    if cls is None:
        raise JournalError(f"unknown journal record in payload: {payload!r}")
    return cls(**document)


# ----------------------------------------------------------------------
# the journal
# ----------------------------------------------------------------------


class RepairJournal:
    """Append-only, CRC-framed write-ahead log for one repair.

    Args:
        path: journal file; created if absent, appended to otherwise
            (recovery reuses the same file across coordinator epochs).
        fsync: ``"always"`` or ``"never"`` (see module docstring).
        crash_after_records: deterministic fault hook — raise
            :class:`CoordinatorCrash` right after the N-th successful
            append of this journal instance.
        metrics: optional :class:`~repro.obs.MetricsRegistry`; counts
            appended records by type (``journal_records_total``) and
            times each fsync (``journal_fsync_seconds``).
    """

    FSYNC_POLICIES = ("always", "never")

    def __init__(
        self,
        path: Union[str, Path],
        fsync: str = "always",
        crash_after_records: Optional[int] = None,
        metrics=None,
    ):
        if fsync not in self.FSYNC_POLICIES:
            raise ValueError(
                f"fsync policy must be one of {self.FSYNC_POLICIES}, "
                f"got {fsync!r}"
            )
        if crash_after_records is not None and crash_after_records < 1:
            raise ValueError("crash_after_records must be >= 1")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.crash_after_records = crash_after_records
        #: records appended by this instance (not counting replayed ones)
        self.records_written = 0
        self._record_counter = None
        self._fsync_hist = None
        self._fsync_counter = None
        if metrics is not None:
            self._record_counter = metrics.counter(
                "journal_records_total",
                "write-ahead journal records appended, by record type",
            )
            self._fsync_hist = metrics.histogram(
                "journal_fsync_seconds",
                "duration of each journal fsync",
            )
            self._fsync_counter = metrics.counter(
                "journal_fsyncs_total",
                "journal fsyncs issued",
            )
        self._file = open(self.path, "ab")

    # -- writing -------------------------------------------------------

    def append(self, record: JournalRecord) -> None:
        """Durably append one record; may raise the injected crash.

        The record is written (and fsynced per policy) *before* any
        crash injection fires, mirroring a process that dies right
        after its write returns.
        """
        if self._file.closed:
            raise JournalError("journal is closed")
        self._file.write(encode_record(record))
        self._file.flush()
        if self.fsync == "always":
            started = time.perf_counter()
            os.fsync(self._file.fileno())
            if self._fsync_hist is not None:
                self._fsync_hist.observe(time.perf_counter() - started)
                self._fsync_counter.inc()
        self.records_written += 1
        if self._record_counter is not None:
            self._record_counter.inc(
                type=_TYPE_NAMES.get(type(record), "unknown")
            )
        if (
            self.crash_after_records is not None
            and self.records_written >= self.crash_after_records
        ):
            self.close()
            raise CoordinatorCrash(self.records_written)

    def kill_on_next_append(self) -> None:
        """Arm an immediate crash: the next append raises.

        Fault-injection hook for correlated failures: a rack-level
        event that takes a coordinator down cannot interrupt a Python
        thread at an arbitrary point, so it arms the journal instead —
        the coordinator dies at its next write-ahead append, exactly
        where a killed process would leave the log.  No-op on a journal
        that is already closed (the coordinator is already dead).
        """
        if not self._file.closed:
            self.crash_after_records = self.records_written + 1

    def reset(self) -> None:
        """Drop every record: a fresh repair run owns the whole file.

        :meth:`Coordinator.execute` calls this before committing a new
        plan, so a journal file left over from a *previous, finished*
        repair cannot masquerade as this run's progress.  Recovery
        (:meth:`Coordinator.resume`) never resets — successor epochs
        keep appending to the crashed run's records.
        """
        if self._file.closed:
            raise JournalError("journal is closed")
        self._file.truncate(0)
        self._file.seek(0)
        if self.fsync == "always":
            os.fsync(self._file.fileno())
        self.records_written = 0

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "RepairJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- replay --------------------------------------------------------

    @staticmethod
    def replay(
        path: Union[str, Path], truncate: bool = True
    ) -> List[JournalRecord]:
        """Read every complete record; truncate the torn tail.

        Walks the frames in order and stops at the first incomplete or
        CRC-mismatched frame — the torn tail of a crash mid-append (or
        a corrupted record, after which nothing downstream can be
        trusted).  With ``truncate=True`` (the default) the file is cut
        back to the last good record so subsequent appends extend a
        clean log.  Replaying twice therefore yields the same records
        — replay is idempotent.
        """
        path = Path(path)
        records: List[JournalRecord] = []
        good_end = 0
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return records
        offset = 0
        while offset + _HEADER.size <= len(blob):
            length, crc = _HEADER.unpack_from(blob, offset)
            start = offset + _HEADER.size
            end = start + length
            if end > len(blob):
                break  # torn tail: header written, payload incomplete
            payload = blob[start:end]
            if zlib.crc32(payload) != crc:
                break  # corrupted record: stop trusting the log here
            try:
                records.append(decode_payload(payload))
            except (JournalError, ValueError, TypeError, KeyError):
                break  # undecodable record counts as corruption
            offset = end
            good_end = end
        if truncate and good_end < len(blob):
            with open(path, "r+b") as f:
                f.truncate(good_end)
        return records
