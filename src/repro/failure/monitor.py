"""Cluster failure monitoring: predictor -> STF flag -> repair.

Closes the loop the paper motivates: SMART telemetry feeds a failure
predictor; the first alarm for a node marks it soon-to-fail on the
cluster; a repair planner then restores its chunks *before* the actual
failure.  False alarms still trigger a full repair (the paper's second
assumption: "proactively repairing the chunks of the STF node is
necessary, even though the STF node is a false alarm").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..cluster.chunk import NodeId
from ..cluster.cluster import StorageCluster
from ..core.plan import RepairPlan
from .predictor import FailurePredictor
from .smart import DiskTrace


@dataclass(frozen=True)
class StfEvent:
    """A node flagged soon-to-fail by the predictor."""

    day: int
    node_id: NodeId
    disk_id: int
    #: None for a false alarm (the disk never actually fails)
    actual_failure_day: Optional[int]

    @property
    def is_false_alarm(self) -> bool:
        return self.actual_failure_day is None

    @property
    def lead_days(self) -> Optional[int]:
        if self.actual_failure_day is None:
            return None
        return self.actual_failure_day - self.day


@dataclass(frozen=True)
class MissedFailure:
    """A disk that failed with no prior alarm (needs reactive repair)."""

    day: int
    node_id: NodeId
    disk_id: int


@dataclass
class MonitorReport:
    """Everything that happened over the monitored horizon."""

    stf_events: List[StfEvent] = field(default_factory=list)
    missed_failures: List[MissedFailure] = field(default_factory=list)
    plans: Dict[NodeId, RepairPlan] = field(default_factory=dict)

    @property
    def false_alarms(self) -> List[StfEvent]:
        return [e for e in self.stf_events if e.is_false_alarm]

    @property
    def predicted_failures(self) -> List[StfEvent]:
        return [e for e in self.stf_events if not e.is_false_alarm]


class ClusterFailureMonitor:
    """Replays disk traces against a cluster, day by day.

    Args:
        cluster: the storage cluster whose nodes map 1:1 to disks.
        traces: one :class:`DiskTrace` per storage node, index-aligned
            with ``node_bindings`` (default: node i <-> trace i).
        predictor: the soon-to-fail classifier.
        node_bindings: optional explicit disk-id -> node-id mapping.
    """

    def __init__(
        self,
        cluster: StorageCluster,
        traces: Sequence[DiskTrace],
        predictor: FailurePredictor,
        node_bindings: Optional[Dict[int, NodeId]] = None,
    ):
        self.cluster = cluster
        self.predictor = predictor
        self.traces = list(traces)
        if node_bindings is None:
            node_ids = cluster.storage_node_ids()
            if len(self.traces) > len(node_ids):
                raise ValueError(
                    f"{len(self.traces)} traces but only {len(node_ids)} nodes"
                )
            node_bindings = {
                trace.disk_id: node_ids[i] for i, trace in enumerate(self.traces)
            }
        self.node_bindings = node_bindings

    def run(
        self,
        on_stf: Optional[Callable[[StfEvent], Optional[RepairPlan]]] = None,
        on_failure: Optional[Callable[[MissedFailure], None]] = None,
    ) -> MonitorReport:
        """Replay the horizon; invoke ``on_stf`` at each first alarm.

        ``on_stf`` typically plans (and simulates/executes) the
        predictive repair and returns the plan for the report.  The
        node is flagged soon-to-fail on the cluster before the callback
        runs.  ``on_failure`` fires for failures that arrive with no
        prior alarm (the node is already marked failed) — the hook for
        reactive repair.
        """
        report = MonitorReport()
        alarmed: set = set()
        horizon = max(s.day for t in self.traces for s in t.samples) + 1
        for day in range(horizon):
            for trace in self.traces:
                node_id = self.node_bindings[trace.disk_id]
                if trace.disk_id in alarmed:
                    continue
                # Actual failure without a preceding alarm: missed.
                if trace.failure_day is not None and day >= trace.failure_day:
                    alarmed.add(trace.disk_id)
                    self.cluster.node(node_id).mark_failed()
                    missed = MissedFailure(day, node_id, trace.disk_id)
                    report.missed_failures.append(missed)
                    if on_failure is not None:
                        on_failure(missed)
                    continue
                window = trace.window(day, self.predictor.window_days)
                if len(window) < self.predictor.window_days:
                    continue
                if self.predictor.predict(window):
                    alarmed.add(trace.disk_id)
                    event = StfEvent(
                        day=day,
                        node_id=node_id,
                        disk_id=trace.disk_id,
                        actual_failure_day=trace.failure_day,
                    )
                    self.cluster.node(node_id).mark_soon_to_fail()
                    report.stf_events.append(event)
                    if on_stf is not None:
                        plan = on_stf(event)
                        if plan is not None:
                            report.plans[node_id] = plan
        return report
