"""LRC-aware predictive repair (the paper's Section III extension).

The paper notes that FastPR's methodology "also applies to
repair-efficient codes, which retrieve available data from k' healthy
nodes ... such that the amount of repair traffic is less than the total
size of k chunks", and derives the LRC case: ``k' = k / l`` helpers
from the lost chunk's *local group*, and up to ``G' <= (M-1)/k'``
parallel groups per round.

This module wires an :class:`~repro.ec.lrc.LocalReconstructionCodec`
into the FastPR machinery:

* :func:`lrc_helper_candidates` — candidate helpers for a locally
  repairable chunk are its local-group members;
* :class:`LrcFastPRPlanner` — Algorithm 1 with fan-in ``k'`` over the
  local groups, ``k'`` fed into the Algorithm 2 quota; the stripe's
  *global parities* (which a local repair cannot rebuild) are assigned
  to migration, the cheapest way to restore them;
* :class:`LrcReconstructionOnlyPlanner` — the reactive baseline:
  local chunks repair via their groups, global parities via ordinary
  ``k``-helper reconstruction rounds.

Plans carry the local-group helpers in their actions, so the emulated
testbed repairs LRC chunks end-to-end: the coordinator asks the codec
for recovery coefficients (all 1 for a local repair, i.e. pure XOR) and
the destination stream-decodes exactly as for RS.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..cluster.chunk import ChunkLocation, NodeId
from ..cluster.cluster import StorageCluster
from ..ec.lrc import LocalReconstructionCodec
from .placement import assign_scattered_destinations
from .plan import ChunkRepairAction, RepairMethod, RepairRound
from .planner import FastPRPlanner, ReconstructionOnlyPlanner, model_for
from .reconstruction_sets import ReconstructionSetFinder, helper_assignment
from .scheduling import (
    RoundComposition,
    schedule_reconstruction_only,
    schedule_repair_rounds,
)


def lrc_helper_candidates(
    cluster: StorageCluster,
    codec: LocalReconstructionCodec,
    stf_node: NodeId,
) -> Callable[[ChunkLocation], List[NodeId]]:
    """Helper-candidate function for local LRC repair.

    For a chunk with a local group (data or local parity), the
    candidates are the healthy holders of the other group members;
    repairing it needs *all* ``k'`` of them (XOR), so Algorithm 1's
    matching degenerates to a disjointness check over local groups —
    exactly the paper's G' formulation.
    """

    def candidates(chunk: ChunkLocation) -> List[NodeId]:
        if chunk.chunk_index >= codec.k + codec.l:
            raise ValueError(
                f"chunk {chunk} is a global parity; it has no local group"
            )
        stripe = cluster.stripe(chunk.stripe_id)
        group = codec.group_of(chunk.chunk_index)
        members = [
            m
            for m in codec.local_group_members(group)
            if m != chunk.chunk_index
        ]
        nodes = [stripe.node_of(m) for m in members]
        healthy = set(cluster.healthy_storage_nodes(exclude={stf_node}))
        return [n for n in nodes if n in healthy]

    return candidates


def split_by_repair_locality(
    codec: LocalReconstructionCodec, chunks: List[ChunkLocation]
) -> Tuple[List[ChunkLocation], List[ChunkLocation]]:
    """Split STF chunks into (locally repairable, global parity)."""
    local = [c for c in chunks if c.chunk_index < codec.k + codec.l]
    global_ = [c for c in chunks if c.chunk_index >= codec.k + codec.l]
    return local, global_


def _check_codec_matches(cluster: StorageCluster, codec) -> None:
    for stripe in cluster.stripes():
        if stripe.n != codec.n or stripe.k != codec.k:
            raise ValueError(
                f"stripe {stripe.stripe_id} is ({stripe.n},{stripe.k}) but "
                f"the codec is ({codec.n},{codec.k})"
            )
        break  # planner contract guarantees uniformity


class _LrcRoundBuilder:
    """Shared round construction for the LRC planners.

    Rounds whose reconstruction chunks are locally repairable use the
    local-group fan-in ``k'``; rounds of global parities fall back to
    ordinary ``k``-helper reconstruction.
    """

    codec: LocalReconstructionCodec

    def _build_round(self, cluster, stf_node, index, comp, standby_placer):
        all_chunks = comp.reconstruction + comp.migration
        if standby_placer is not None:
            destinations = standby_placer.assign(all_chunks)
        else:
            destinations = assign_scattered_destinations(
                cluster, stf_node, all_chunks
            )
        helpers = {}
        if comp.reconstruction:
            is_local = (
                comp.reconstruction[0].chunk_index < self.codec.k + self.codec.l
            )
            if is_local:
                helpers = helper_assignment(
                    cluster,
                    stf_node,
                    comp.reconstruction,
                    fanin=self.codec.group_size,
                    helper_fn=lrc_helper_candidates(
                        cluster, self.codec, stf_node
                    ),
                )
            else:
                helpers = helper_assignment(
                    cluster, stf_node, comp.reconstruction
                )
        round_ = RepairRound(index=index)
        for chunk in comp.reconstruction:
            round_.reconstructions.append(
                ChunkRepairAction(
                    stripe_id=chunk.stripe_id,
                    chunk_index=chunk.chunk_index,
                    method=RepairMethod.RECONSTRUCTION,
                    sources=tuple(helpers[chunk.stripe_id]),
                    destination=destinations[(chunk.stripe_id, chunk.chunk_index)],
                )
            )
        for chunk in comp.migration:
            round_.migrations.append(
                ChunkRepairAction(
                    stripe_id=chunk.stripe_id,
                    chunk_index=chunk.chunk_index,
                    method=RepairMethod.MIGRATION,
                    sources=(stf_node,),
                    destination=destinations[(chunk.stripe_id, chunk.chunk_index)],
                )
            )
        return round_


class LrcFastPRPlanner(_LrcRoundBuilder, FastPRPlanner):
    """FastPR with local-group reconstruction for LRC stripes."""

    name = "fastpr-lrc"

    def __init__(self, codec: LocalReconstructionCodec, **kwargs):
        kwargs.setdefault("k_prime", codec.group_size)
        super().__init__(**kwargs)
        self.codec = codec

    def compose_rounds(self, cluster, stf_node, chunks):
        _check_codec_matches(cluster, self.codec)
        local, global_ = split_by_repair_locality(self.codec, list(chunks))
        compositions: List[RoundComposition] = []
        if local:
            finder = ReconstructionSetFinder(
                cluster,
                stf_node,
                optimize=self.optimize,
                group_size=self.group_size,
                seed=self.seed,
                fanin=self.codec.group_size,
                helper_fn=lrc_helper_candidates(cluster, self.codec, stf_node),
            )
            sets = finder.find_all(local)
            self.last_stats = finder.stats
            model = model_for(
                cluster,
                self.scenario,
                k=self.codec.k,
                profile=self.profile,
                k_prime=self.codec.group_size,
            )
            compositions = schedule_repair_rounds(
                sets, model, seed=self.seed, rounding=self.rounding
            )
        # Global parities migrate: a local repair cannot rebuild them
        # and a k-helper decode costs k reads vs migration's one.
        if global_:
            if compositions:
                compositions[0].migration.extend(global_)
            else:
                compositions = [RoundComposition(migration=global_)]
        return compositions


class LrcReconstructionOnlyPlanner(_LrcRoundBuilder, ReconstructionOnlyPlanner):
    """Reactive baseline using LRC local repair where possible."""

    name = "reconstruction-lrc"

    def __init__(self, codec: LocalReconstructionCodec, **kwargs):
        super().__init__(**kwargs)
        self.codec = codec

    def compose_rounds(self, cluster, stf_node, chunks):
        _check_codec_matches(cluster, self.codec)
        local, global_ = split_by_repair_locality(self.codec, list(chunks))
        compositions: List[RoundComposition] = []
        if local:
            finder = ReconstructionSetFinder(
                cluster,
                stf_node,
                optimize=self.optimize,
                group_size=self.group_size,
                seed=self.seed,
                fanin=self.codec.group_size,
                helper_fn=lrc_helper_candidates(cluster, self.codec, stf_node),
            )
            compositions.extend(
                schedule_reconstruction_only(finder.find_all(local))
            )
        if global_:
            # Ordinary k-helper reconstruction rounds for the globals.
            finder = ReconstructionSetFinder(
                cluster,
                stf_node,
                optimize=self.optimize,
                seed=self.seed,
            )
            compositions.extend(
                schedule_reconstruction_only(finder.find_all(global_))
            )
        return compositions


def build_lrc_cluster(
    codec: LocalReconstructionCodec,
    num_nodes: int,
    num_stripes: int,
    num_hot_standby: int = 0,
    seed: Optional[int] = None,
    **cluster_kwargs,
) -> StorageCluster:
    """Random cluster whose stripes match an LRC codec's (n, k)."""
    return StorageCluster.random(
        num_nodes,
        num_stripes,
        codec.n,
        codec.k,
        num_hot_standby=num_hot_standby,
        seed=seed,
        **cluster_kwargs,
    )
