"""Tests for SMART trace CSV round-tripping."""

import csv

import pytest

from repro.failure.smart import SmartTraceGenerator
from repro.failure.traces_io import (
    HEADER,
    TraceFormatError,
    load_traces,
    save_traces,
)


@pytest.fixture
def fleet():
    return SmartTraceGenerator(
        30, horizon_days=40, annual_failure_rate=0.6, seed=21
    ).generate()


class TestRoundTrip:
    def test_preserves_everything(self, fleet, tmp_path):
        path = tmp_path / "fleet.csv"
        save_traces(fleet, path)
        restored = load_traces(path)
        assert len(restored) == len(fleet)
        for orig, back in zip(fleet, restored):
            assert back.disk_id == orig.disk_id
            assert back.failure_day == orig.failure_day
            assert len(back.samples) == len(orig.samples)
            assert back.samples[0].values == orig.samples[0].values
            assert back.samples[-1].values == orig.samples[-1].values

    def test_failure_flag_on_last_day_only(self, fleet, tmp_path):
        path = tmp_path / "fleet.csv"
        save_traces(fleet, path)
        with open(path) as f:
            rows = list(csv.reader(f))[1:]
        failing = {t.disk_id for t in fleet if t.will_fail}
        flagged = [row for row in rows if row[2] == "1"]
        assert {int(r[0]) for r in flagged} == failing

    def test_predictor_trains_on_restored_traces(self, fleet, tmp_path):
        from repro.failure.predictor import LogisticPredictor

        path = tmp_path / "fleet.csv"
        save_traces(fleet, path)
        restored = load_traces(path)
        if sum(t.will_fail for t in restored) == 0:
            pytest.skip("seed produced no failures")
        LogisticPredictor(epochs=20, seed=0).fit(restored)


class TestValidation:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(TraceFormatError, match="empty"):
            load_traces(path)

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n")
        with pytest.raises(TraceFormatError, match="header"):
            load_traces(path)

    def test_bad_column_count(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(",".join(HEADER) + "\n1,2\n")
        with pytest.raises(TraceFormatError, match="columns"):
            load_traces(path)

    def test_non_numeric_value(self, tmp_path):
        path = tmp_path / "bad.csv"
        row = ["1", "0", "0"] + ["oops"] * (len(HEADER) - 3)
        path.write_text(",".join(HEADER) + "\n" + ",".join(row) + "\n")
        with pytest.raises(TraceFormatError):
            load_traces(path)

    def test_double_failure_flag(self, tmp_path):
        path = tmp_path / "bad.csv"
        zeros = ["0.0"] * (len(HEADER) - 3)
        lines = [
            ",".join(HEADER),
            ",".join(["1", "0", "1"] + zeros),
            ",".join(["1", "1", "1"] + zeros),
        ]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceFormatError, match="twice"):
            load_traces(path)

    def test_samples_after_failure(self, tmp_path):
        path = tmp_path / "bad.csv"
        zeros = ["0.0"] * (len(HEADER) - 3)
        lines = [
            ",".join(HEADER),
            ",".join(["1", "0", "1"] + zeros),
            ",".join(["1", "1", "0"] + zeros),
        ]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceFormatError, match="continue"):
            load_traces(path)
