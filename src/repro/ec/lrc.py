"""Azure-style Locally Repairable Codes LRC(k, l, g).

The paper's Section III extends its analysis to LRCs: ``k`` data chunks
are split into ``l`` local groups (``k`` divisible by ``l``), each local
group gets one XOR local parity, and ``g`` global Cauchy parities cover
all data chunks.  A stripe therefore has ``n = k + l + g`` chunks.

Repairing one lost data chunk (or local parity) reads only the
``k' = k / l`` other chunks of its local group — the reduced repair
fan-in the paper substitutes into Equations (5) and (6).

Chunk index layout within a stripe:

* ``0 .. k-1`` — data chunks (group ``i`` owns ``[i*k/l, (i+1)*k/l)``),
* ``k .. k+l-1`` — local parities (one per group),
* ``k+l .. n-1`` — global parities.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from .codec import (
    DecodeError,
    ErasureCodec,
    check_equal_sizes,
    register_codec,
)
from .galois import gf_matmul_bytes
from .matrix import cauchy, identity, invert, rank


class LocalReconstructionCodec(ErasureCodec):
    """LRC(k, l, g) codec with XOR local parities and Cauchy globals."""

    def __init__(self, k: int, l: int, g: int):
        if k <= 0 or l <= 0 or g < 0:
            raise ValueError(f"invalid LRC parameters k={k}, l={l}, g={g}")
        if k % l != 0:
            raise ValueError(f"k={k} must be divisible by l={l}")
        self.k = k
        self.l = l
        self.g = g
        self.n = k + l + g
        self.group_size = k // l
        self._generator = self._build_generator()

    def _build_generator(self) -> np.ndarray:
        rows: List[np.ndarray] = [identity(self.k)]
        local = np.zeros((self.l, self.k), dtype=np.uint8)
        for group in range(self.l):
            start = group * self.group_size
            local[group, start : start + self.group_size] = 1
        rows.append(local)
        if self.g:
            rows.append(cauchy(self.g, self.k))
        return np.concatenate(rows, axis=0)

    @property
    def generator_matrix(self) -> np.ndarray:
        """The ``n x k`` generator matrix (copy)."""
        return self._generator.copy()

    def group_of(self, index: int) -> int:
        """Return the local-group id of a data or local-parity chunk.

        Raises:
            ValueError: for global-parity indices, which have no group.
        """
        if 0 <= index < self.k:
            return index // self.group_size
        if self.k <= index < self.k + self.l:
            return index - self.k
        raise ValueError(f"chunk {index} is a global parity; no local group")

    def local_group_members(self, group: int) -> List[int]:
        """All chunk indices of a local group (data + local parity)."""
        if not 0 <= group < self.l:
            raise ValueError(f"group {group} outside [0, {self.l})")
        start = group * self.group_size
        members = list(range(start, start + self.group_size))
        members.append(self.k + group)
        return members

    def encode(self, data_chunks: Sequence[bytes]) -> List[bytes]:
        if len(data_chunks) != self.k:
            raise ValueError(
                f"LRC expects {self.k} data chunks, got {len(data_chunks)}"
            )
        check_equal_sizes(data_chunks)
        shards = np.stack(
            [np.frombuffer(c, dtype=np.uint8) for c in data_chunks]
        )
        parity_rows = self._generator[self.k :, :]
        parity = gf_matmul_bytes(parity_rows, shards)
        coded = [bytes(c) for c in data_chunks]
        coded.extend(parity[i].tobytes() for i in range(self.l + self.g))
        return coded

    def decode(
        self,
        available: Dict[int, bytes],
        wanted: Sequence[int],
    ) -> Dict[int, bytes]:
        wanted = list(wanted)
        result: Dict[int, bytes] = {
            i: bytes(available[i]) for i in wanted if i in available
        }
        missing = [i for i in wanted if i not in available]
        if not missing:
            return result
        check_equal_sizes(list(available.values()))

        # Fast path: single missing chunk repairable within its group.
        if len(missing) == 1 and missing[0] < self.k + self.l:
            group = self.group_of(missing[0])
            members = [m for m in self.local_group_members(group) if m != missing[0]]
            if all(m in available for m in members):
                acc = np.zeros(len(next(iter(available.values()))), dtype=np.uint8)
                for m in members:
                    np.bitwise_xor(
                        acc, np.frombuffer(available[m], dtype=np.uint8), out=acc
                    )
                result[missing[0]] = acc.tobytes()
                return result

        # General path: pick k independent generator rows among survivors.
        helper_ids = self._independent_rows(sorted(available))
        helper_shards = np.stack(
            [np.frombuffer(available[i], dtype=np.uint8) for i in helper_ids]
        )
        sub_inv = invert(self._generator[helper_ids, :])
        data_shards = gf_matmul_bytes(sub_inv, helper_shards)
        rebuilt = gf_matmul_bytes(self._generator[missing, :], data_shards)
        for row, idx in enumerate(missing):
            result[idx] = rebuilt[row].tobytes()
        return result

    def _independent_rows(self, candidates: Sequence[int]) -> List[int]:
        """Greedily pick k generator rows of full rank from candidates."""
        chosen: List[int] = []
        for idx in candidates:
            trial = chosen + [idx]
            if rank(self._generator[trial, :]) == len(trial):
                chosen.append(idx)
            if len(chosen) == self.k:
                return chosen
        raise DecodeError(
            f"available chunks {list(candidates)} span rank "
            f"{len(chosen)} < k={self.k}; stripe unrecoverable"
        )

    def repair_helpers(self, lost_index: int, alive: Sequence[int]) -> List[int]:
        alive_set = {i for i in alive if i != lost_index}
        if lost_index < self.k + self.l:
            group = self.group_of(lost_index)
            members = [
                m for m in self.local_group_members(group) if m != lost_index
            ]
            if all(m in alive_set for m in members):
                return members
        # Degraded: fall back to a global decode from k independent rows.
        return self._independent_rows(sorted(alive_set))

    def recovery_coefficients(
        self, lost_index: int, helper_ids: Sequence[int]
    ) -> Dict[int, int]:
        """GF coefficients for streaming single-chunk repair.

        For a local repair (helpers = the lost chunk's local group) the
        coefficients are all 1 (XOR); in general they come from solving
        the generator system over the supplied helper rows.
        """
        helper_ids = list(helper_ids)
        if lost_index in helper_ids:
            raise DecodeError("lost chunk cannot be its own helper")
        if lost_index < self.k + self.l:
            group = self.group_of(lost_index)
            members = set(self.local_group_members(group)) - {lost_index}
            if members == set(helper_ids):
                return {helper: 1 for helper in helper_ids}
        if rank(self._generator[helper_ids, :]) != self.k:
            raise DecodeError(
                f"helpers {helper_ids} do not span the code (rank < k)"
            )
        from .matrix import matmul

        if len(helper_ids) != self.k:
            raise DecodeError(
                f"general LRC repair needs exactly k={self.k} independent "
                f"helpers, got {len(helper_ids)}"
            )
        sub_inv = invert(self._generator[helper_ids, :])
        row = matmul(self._generator[[lost_index], :], sub_inv)[0]
        return {helper: int(row[i]) for i, helper in enumerate(helper_ids)}

    def single_repair_cost(self):
        from .codec import RepairCost

        kprime = self.group_size
        return RepairCost(helpers=kprime, traffic_chunks=float(kprime))


def _lrc_factory(k: int, l: int, g: int) -> LocalReconstructionCodec:
    return LocalReconstructionCodec(k, l, g)


register_codec("lrc", _lrc_factory)
