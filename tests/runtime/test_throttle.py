"""Tests for rate limiters and transfer reservations."""

import time

import pytest

from repro.runtime.throttle import RateLimiter, reserve_transfer, sleep_until


class TestRateLimiter:
    def test_validation(self):
        with pytest.raises(ValueError):
            RateLimiter(0)
        with pytest.raises(ValueError):
            RateLimiter(-5)

    def test_unlimited(self):
        limiter = RateLimiter(None)
        assert limiter.unlimited
        before = time.monotonic()
        limiter.throttle(10**9)
        assert time.monotonic() - before < 0.05

    def test_reserve_accumulates(self):
        limiter = RateLimiter(1000.0)
        d1 = limiter.reserve(100)
        d2 = limiter.reserve(100)
        assert d2 - d1 == pytest.approx(0.1, abs=0.01)
        assert limiter.bytes_total == 200

    def test_throttle_sleeps(self):
        limiter = RateLimiter(10_000.0)
        start = time.monotonic()
        limiter.throttle(1000)  # 0.1 s
        elapsed = time.monotonic() - start
        assert elapsed >= 0.09

    def test_throughput_approximation(self):
        limiter = RateLimiter(100_000.0)
        start = time.monotonic()
        for _ in range(10):
            limiter.throttle(2000)  # total 20000 B -> 0.2 s
        elapsed = time.monotonic() - start
        assert 0.18 <= elapsed <= 0.4

    def test_negative_bytes(self):
        with pytest.raises(ValueError):
            RateLimiter(10.0).reserve(-1)

    def test_idle_gap_not_credited(self):
        # A long idle period must not allow a burst above the rate.
        limiter = RateLimiter(10_000.0)
        limiter.throttle(100)
        time.sleep(0.05)
        start = time.monotonic()
        limiter.throttle(1000)
        assert time.monotonic() - start >= 0.09


class TestReserveTransfer:
    def test_slower_side_governs(self):
        fast = RateLimiter(1_000_000.0)
        slow = RateLimiter(10_000.0)
        start = time.monotonic()
        deadline = reserve_transfer(fast, slow, 1000)  # 0.1 s at slow rate
        assert deadline - start == pytest.approx(0.1, abs=0.02)

    def test_both_sides_reserved(self):
        a = RateLimiter(10_000.0)
        b = RateLimiter(10_000.0)
        reserve_transfer(a, b, 500)
        assert a.bytes_total == 500
        assert b.bytes_total == 500
        # A follow-up on either side starts after the joint reservation.
        d_a = a.reserve(0)
        now = time.monotonic()
        assert d_a >= now + 0.02

    def test_unlimited_pair(self):
        a = RateLimiter(None)
        b = RateLimiter(None)
        deadline = reserve_transfer(a, b, 10**9)
        assert deadline <= time.monotonic() + 0.01

    def test_sleep_until_past_deadline(self):
        start = time.monotonic()
        sleep_until(start - 1.0)
        assert time.monotonic() - start < 0.05
