"""Synthetic SMART telemetry.

The paper's predictive repair builds on published disk-failure
predictors trained on SMART data ([6], [18], [23], [42], [43], [45]).
No production SMART dataset ships offline, so this module generates
Backblaze-like synthetic traces: healthy disks emit stable attributes
with noise; failing disks show the superlinear growth of reallocated /
pending / uncorrectable sector counts that those studies exploit,
starting some days before the actual failure.

The traces preserve the property the paper depends on: a learned or
threshold predictor can flag a soon-to-fail disk days in advance with
high precision and a small false-alarm rate (>= 95% accuracy is
reported by [6], [18], [23], [45]).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

#: SMART attributes used by the predictors, by standard id.
SMART_ATTRIBUTES = (
    "smart_5_reallocated_sectors",
    "smart_187_reported_uncorrectable",
    "smart_188_command_timeout",
    "smart_197_pending_sectors",
    "smart_198_offline_uncorrectable",
    "smart_194_temperature",
    "smart_9_power_on_hours",
)

#: Attributes whose growth signals degradation (all but temp / hours).
DEGRADATION_ATTRIBUTES = SMART_ATTRIBUTES[:5]


@dataclass(frozen=True)
class SmartSample:
    """One daily SMART reading of one disk."""

    disk_id: int
    day: int
    values: Dict[str, float]

    def vector(self, attributes: Sequence[str] = SMART_ATTRIBUTES) -> List[float]:
        return [self.values[name] for name in attributes]


@dataclass
class DiskTrace:
    """A disk's full observation window plus ground truth.

    Attributes:
        disk_id: unique id.
        samples: daily samples, ordered by day.
        failure_day: the day the disk actually fails, or ``None`` for a
            disk that survives the horizon.
    """

    disk_id: int
    samples: List[SmartSample] = field(default_factory=list)
    failure_day: Optional[int] = None

    @property
    def will_fail(self) -> bool:
        return self.failure_day is not None

    def window(self, end_day: int, length: int) -> List[SmartSample]:
        """The ``length`` samples ending at ``end_day`` (inclusive)."""
        return [s for s in self.samples if end_day - length < s.day <= end_day]


class SmartTraceGenerator:
    """Generates a fleet of synthetic disk traces.

    Args:
        num_disks: fleet size.
        horizon_days: observation window length.
        annual_failure_rate: fraction of the fleet failing per year
            (field studies report 1-9%; default 4%).
        degradation_days: mean number of days over which a failing
            disk's error counters ramp up before failure.
        seed: RNG seed for reproducibility.
    """

    def __init__(
        self,
        num_disks: int,
        horizon_days: int = 120,
        annual_failure_rate: float = 0.04,
        degradation_days: float = 21.0,
        seed: Optional[int] = None,
    ):
        if num_disks <= 0 or horizon_days <= 0:
            raise ValueError("num_disks and horizon_days must be positive")
        if not 0 <= annual_failure_rate <= 1:
            raise ValueError("annual_failure_rate must be in [0, 1]")
        self.num_disks = num_disks
        self.horizon_days = horizon_days
        self.annual_failure_rate = annual_failure_rate
        self.degradation_days = degradation_days
        self._rng = random.Random(seed)

    def generate(self) -> List[DiskTrace]:
        """Build the full fleet of traces."""
        return [self._one_disk(disk_id) for disk_id in range(self.num_disks)]

    def _one_disk(self, disk_id: int) -> DiskTrace:
        rng = self._rng
        horizon_failure_prob = (
            1.0 - (1.0 - self.annual_failure_rate) ** (self.horizon_days / 365.0)
        )
        failure_day: Optional[int] = None
        if rng.random() < horizon_failure_prob:
            # Leave room for a degradation ramp inside the horizon.
            failure_day = rng.randint(
                min(int(self.degradation_days), self.horizon_days - 1),
                self.horizon_days - 1,
            )
        ramp = max(3.0, rng.gauss(self.degradation_days, self.degradation_days / 4))
        base_temp = rng.uniform(28, 38)
        start_hours = rng.uniform(2_000, 40_000)
        # A small share of healthy disks carry benign static error counts
        # — the false-alarm bait of threshold predictors.
        benign_offset = {
            name: (rng.expovariate(1 / 12.0) if rng.random() < 0.08 else 0.0)
            for name in DEGRADATION_ATTRIBUTES
        }
        trace = DiskTrace(disk_id=disk_id, failure_day=failure_day)
        severity = {
            name: rng.uniform(0.5, 2.0) for name in DEGRADATION_ATTRIBUTES
        }
        for day in range(self.horizon_days):
            if failure_day is not None and day > failure_day:
                break
            values: Dict[str, float] = {}
            for name in DEGRADATION_ATTRIBUTES:
                level = benign_offset[name]
                if failure_day is not None:
                    remaining = failure_day - day
                    if remaining < ramp:
                        progress = 1.0 - remaining / ramp
                        # Superlinear counter growth toward failure.
                        level += severity[name] * 120.0 * progress**2
                level += abs(rng.gauss(0, 0.3))
                values[name] = round(level, 2)
            values["smart_194_temperature"] = round(
                base_temp + rng.gauss(0, 1.5), 1
            )
            values["smart_9_power_on_hours"] = round(start_hours + 24.0 * day, 1)
            trace.samples.append(SmartSample(disk_id, day, values))
        return trace


def daily_samples(traces: Sequence[DiskTrace]) -> Iterator[List[SmartSample]]:
    """Iterate the fleet day by day (what a monitor would observe)."""
    horizon = max(s.day for t in traces for s in t.samples) + 1
    by_day: Dict[int, List[SmartSample]] = {}
    for trace in traces:
        for sample in trace.samples:
            by_day.setdefault(sample.day, []).append(sample)
    for day in range(horizon):
        yield by_day.get(day, [])
