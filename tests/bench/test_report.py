"""Tests for the markdown report generator."""

import json

import pytest

from repro.bench.harness import Experiment, Panel
from repro.bench.report import experiment_to_markdown, generate_report, main


def write_result(directory, experiment):
    path = directory / f"{experiment.experiment_id}.json"
    path.write_text(json.dumps(experiment.to_dict()))


@pytest.fixture
def results_dir(tmp_path):
    exp = Experiment("fig2", "Mathematical analysis in scattered repair")
    panel = Panel("Fig 2(a) — varying M", "# of nodes")
    panel.add_point(20, {"predictive": 0.84, "reactive": 1.52})
    panel.add_point(100, {"predictive": 0.25, "reactive": 0.29})
    exp.panels.append(panel)
    write_result(tmp_path, exp)

    ext = Experiment("lrc_extension", "LRC extension")
    panel = Panel("Analysis", "model")
    panel.add_point("reactive", {"rs": 0.97, "lrc": 0.29})
    ext.panels.append(panel)
    write_result(tmp_path, ext)
    return tmp_path


class TestSerialization:
    def test_to_from_dict_roundtrip(self):
        exp = Experiment("figX", "Title")
        panel = Panel("P", "x", ylabel="seconds")
        panel.add_point("a", {"s1": 1.5, "s2": 2.5})
        exp.panels.append(panel)
        back = Experiment.from_dict(exp.to_dict())
        assert back.experiment_id == "figX"
        assert back.panel("P").values_of("s1") == [1.5]
        assert back.panel("P").ylabel == "seconds"
        assert back.render() == exp.render()


class TestGenerateReport:
    def test_contains_headings_and_tables(self, results_dir):
        report = generate_report(results_dir)
        assert report.startswith("# FastPR reproduction results")
        assert "## fig2: Mathematical analysis" in report
        assert "### Fig 2(a) — varying M" in report
        assert "| # of nodes | predictive | reactive |" in report
        assert "| 20 | 0.8400 | 1.5200 |" in report

    def test_figures_before_extensions(self, results_dir):
        report = generate_report(results_dir)
        assert report.index("fig2") < report.index("lrc_extension")

    def test_empty_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            generate_report(tmp_path)

    def test_markdown_table_shape(self):
        exp = Experiment("figY", "T")
        panel = Panel("P", "x")
        panel.add_point(1, {"a": 0.5})
        exp.panels.append(panel)
        lines = experiment_to_markdown(exp)
        header = next(l for l in lines if l.startswith("| x"))
        assert header == "| x | a |"


class TestCli:
    def test_writes_output_file(self, results_dir, tmp_path, capsys):
        out = tmp_path / "REPORT.md"
        assert main([str(results_dir), "-o", str(out)]) == 0
        assert out.exists()
        assert "Fig 2(a)" in out.read_text()

    def test_prints_to_stdout(self, results_dir, capsys):
        assert main([str(results_dir)]) == 0
        assert "Fig 2(a)" in capsys.readouterr().out

    def test_missing_dir(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2
