"""Figure 2: mathematical analysis, scattered repair.

Paper claims reproduced here:

* predictive repair beats reactive repair at every configuration;
* the gain is larger for small M, large k, large bd, small bn;
* RS(16,12) shows a ~33% reduction (paper: 33.1%).
"""

from conftest import run_once

from repro.bench.experiments import fig2_math_scattered
from repro.bench.harness import reduction


def test_fig2_math_scattered(benchmark, save_result):
    exp = run_once(benchmark, fig2_math_scattered)
    save_result(exp)

    for panel in exp.panels:
        predictive = panel.values_of("predictive")
        reactive = panel.values_of("reactive")
        for p, r in zip(predictive, reactive):
            assert p < r, f"{panel.title}: predictive {p} !< reactive {r}"

    # Gain grows with k (panel b) and shrinks with M (panel a).
    panel_a = exp.panel("Fig 2(a) — varying M")
    gain_small_m = reduction(
        panel_a.values_of("reactive")[0], panel_a.values_of("predictive")[0]
    )
    gain_large_m = reduction(
        panel_a.values_of("reactive")[-1], panel_a.values_of("predictive")[-1]
    )
    assert gain_small_m > gain_large_m

    panel_b = exp.panel("Fig 2(b) — varying RS(n,k)")
    gains = [
        reduction(r, p)
        for r, p in zip(
            panel_b.values_of("reactive"), panel_b.values_of("predictive")
        )
    ]
    assert gains == sorted(gains), "gain should grow with k"
    # RS(16,12): paper reports 33.1%.
    assert 0.25 < gains[-1] < 0.45

    # Gain grows with bd (panel c) and shrinks with bn (panel d).
    panel_c = exp.panel("Fig 2(c) — varying disk bandwidth")
    gain_bd = [
        reduction(r, p)
        for r, p in zip(
            panel_c.values_of("reactive"), panel_c.values_of("predictive")
        )
    ]
    assert gain_bd[-1] > gain_bd[0]

    panel_d = exp.panel("Fig 2(d) — varying network bandwidth")
    gain_bn = [
        reduction(r, p)
        for r, p in zip(
            panel_d.values_of("reactive"), panel_d.values_of("predictive")
        )
    ]
    assert gain_bn[0] > gain_bn[-1]
