"""Exactness checks: the event simulator vs the Section III equations.

Where the closed form and the event-driven simulator model the same
situation (no cross-task contention), their numbers must agree — this
pins both implementations against each other and against the paper.
"""

import pytest

from repro.cluster import StorageCluster
from repro.core.analysis import AnalyticalModel, BandwidthProfile
from repro.core.plan import (
    ChunkRepairAction,
    RepairMethod,
    RepairPlan,
    RepairRound,
    RepairScenario,
)
from repro.sim.simulator import simulate_repair

CHUNK = 1200
BD = 100.0
BN = 300.0
PROFILE = BandwidthProfile(
    chunk_size=CHUNK, disk_bandwidth=BD, network_bandwidth=BN
)


def build_cluster(num_nodes=30, standby=3):
    return StorageCluster(
        num_nodes,
        num_hot_standby=standby,
        disk_bandwidth=BD,
        network_bandwidth=BN,
        chunk_size=CHUNK,
    )


class TestEq4Migration:
    def test_one_chunk(self):
        cluster = build_cluster()
        cluster.add_stripe(4, 2, [0, 1, 2, 3])
        model = AnalyticalModel(num_nodes=30, k=2, profile=PROFILE)
        plan = RepairPlan(stf_node=0, scenario=RepairScenario.SCATTERED)
        round_ = RepairRound(index=0)
        round_.migrations.append(
            ChunkRepairAction(0, 0, RepairMethod.MIGRATION, (0,), 5)
        )
        plan.rounds.append(round_)
        assert simulate_repair(cluster, plan).total_time == pytest.approx(
            model.migration_time()
        )

    def test_chain_of_chunks_is_additive(self):
        cluster = build_cluster()
        for i in range(4):
            cluster.add_stripe(4, 2, [0, 1 + i, 5 + i, 10 + i])
        model = AnalyticalModel(num_nodes=30, k=2, profile=PROFILE)
        plan = RepairPlan(stf_node=0, scenario=RepairScenario.SCATTERED)
        round_ = RepairRound(index=0)
        for sid in range(4):
            round_.migrations.append(
                ChunkRepairAction(
                    sid, 0, RepairMethod.MIGRATION, (0,), 20 + sid
                )
            )
        plan.rounds.append(round_)
        # Distinct destinations: still serialized end-to-end by the
        # synchronous per-chunk pipeline of the STF agent.
        assert simulate_repair(cluster, plan).total_time == pytest.approx(
            4 * model.migration_time()
        )


class TestEq5ScatteredReconstruction:
    @pytest.mark.parametrize("k", [2, 3, 6])
    def test_single_chunk_matches(self, k):
        n = k + 2
        cluster = build_cluster()
        cluster.add_stripe(n, k, list(range(n)))
        model = AnalyticalModel(num_nodes=30, k=k, profile=PROFILE)
        plan = RepairPlan(stf_node=0, scenario=RepairScenario.SCATTERED)
        round_ = RepairRound(index=0)
        round_.reconstructions.append(
            ChunkRepairAction(
                0,
                0,
                RepairMethod.RECONSTRUCTION,
                tuple(range(1, k + 1)),
                n + 1,
            )
        )
        plan.rounds.append(round_)
        assert simulate_repair(cluster, plan).total_time == pytest.approx(
            model.reconstruction_time()
        )

    def test_disjoint_groups_run_in_parallel(self):
        # Two reconstructions with disjoint helpers and destinations
        # finish in one t_r, not two.
        cluster = build_cluster()
        cluster.add_stripe(4, 3, [0, 1, 2, 3])
        cluster.add_stripe(4, 3, [0, 5, 6, 7])
        model = AnalyticalModel(num_nodes=30, k=3, profile=PROFILE)
        plan = RepairPlan(stf_node=0, scenario=RepairScenario.SCATTERED)
        round_ = RepairRound(index=0)
        round_.reconstructions.append(
            ChunkRepairAction(0, 0, RepairMethod.RECONSTRUCTION, (1, 2, 3), 10)
        )
        round_.reconstructions.append(
            ChunkRepairAction(1, 0, RepairMethod.RECONSTRUCTION, (5, 6, 7), 11)
        )
        plan.rounds.append(round_)
        assert simulate_repair(cluster, plan).total_time == pytest.approx(
            model.reconstruction_time()
        )


class TestEq6HotStandbyIngest:
    def test_ingest_dominates_and_matches_transmission_term(self):
        """G chunks to h standbys: the shared ingest matches Eq. (6)'s
        G*k/h transmission term (reads overlap it; writes pipeline)."""
        G, k, h = 4, 3, 2
        cluster = build_cluster(num_nodes=20, standby=h)
        helpers = iter(range(1, 20))
        plan = RepairPlan(stf_node=0, scenario=RepairScenario.HOT_STANDBY)
        round_ = RepairRound(index=0)
        standbys = [20, 21]
        for g in range(G):
            hs = [next(helpers) for _ in range(k)]
            cluster.add_stripe(k + 1, k, [0] + hs)
            round_.reconstructions.append(
                ChunkRepairAction(
                    g, 0, RepairMethod.RECONSTRUCTION, tuple(hs), standbys[g % h]
                )
            )
        plan.rounds.append(round_)
        total = simulate_repair(cluster, plan).total_time
        p = PROFILE
        # Lower bound: read + per-standby ingest of G*k/h chunks.
        ingest = (G * k / h) * p.network_time
        assert total >= p.disk_time + ingest - 1e-9
        # Upper bound: Eq. (6)'s fully serialized read+ingest+write.
        eq6 = p.disk_time + ingest + (G / h) * p.disk_time
        assert total <= eq6 + 1e-9

    def test_more_standbys_scale_ingest_down(self):
        times = {}
        for h in (1, 3):
            cluster = build_cluster(num_nodes=20, standby=h)
            standby_ids = cluster.hot_standby_ids()
            plan = RepairPlan(stf_node=0, scenario=RepairScenario.HOT_STANDBY)
            round_ = RepairRound(index=0)
            helpers = iter(range(1, 20))
            for g in range(3):
                hs = [next(helpers) for _ in range(3)]
                cluster.add_stripe(4, 3, [0] + hs)
                round_.reconstructions.append(
                    ChunkRepairAction(
                        g,
                        0,
                        RepairMethod.RECONSTRUCTION,
                        tuple(hs),
                        standby_ids[g % h],
                    )
                )
            plan.rounds.append(round_)
            times[h] = simulate_repair(cluster, plan).total_time
        assert times[3] < times[1]
