"""Hot-path codec microbench: batched vs per-stripe encode/decode.

Sibling of the Figure 15 microbench, but for this repository's own
optimization rather than a paper figure: the ``encode_batch`` /
``decode_batch`` entry points (DESIGN.md §13) fold a window of stripes
into one wide GF(256) matrix product.  At repair packet sizes (4 KiB)
the per-stripe loop pays Python call overhead per stripe and single
chunks sit at the uint16 paired-lookup threshold, so batching must win
clearly once the window is wide.
"""

from conftest import run_once

from repro.bench.experiments import hotpath_codec

BATCHES = (1, 4, 16, 64)


def test_hotpath_codec(benchmark, save_result):
    exp = run_once(benchmark, hotpath_codec, batches=BATCHES)
    save_result(exp)

    for title in (
        "Encode — per-stripe loop vs encode_batch",
        "Decode (1 lost chunk) — per-stripe loop vs decode_batch",
    ):
        panel = exp.panel(title)
        loop = panel.values_of("per_stripe")
        batched = panel.values_of("batched")
        # Wide windows amortize per-call overhead and unlock the u16
        # kernel: the batched path must beat the loop it replaced.
        assert batched[-1] > 1.2 * loop[-1], (
            f"{title}: batched {batched[-1]:.1f} MB/s vs "
            f"per-stripe {loop[-1]:.1f} MB/s at batch {BATCHES[-1]}"
        )
        # A batch of one is the same work modulo dispatch; it must not
        # regress badly against the direct call.
        assert batched[0] > 0.5 * loop[0]
