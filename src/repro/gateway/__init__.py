"""Client-facing object gateway: PUT/GET that stay fast during repair.

The front door the paper's evaluation implies but never shows: named
objects striped through :mod:`repro.ec` onto live repair agents, read
back degraded when a datanode dies or is flagged soon-to-fail, with a
:class:`TrafficArbiter` guaranteeing foreground GETs a bandwidth floor
while repair storms run (DESIGN.md §15).
"""

from .arbiter import CLASSES, TrafficArbiter, traffic_class
from .manifest import (
    MANIFEST_SCHEMA,
    ManifestError,
    ManifestStore,
    ObjectManifest,
    StripeRef,
    digest,
)
from .store import (
    CLIENT_ID,
    GATEWAY_ID,
    GatewayError,
    GatewayServer,
    GetResult,
    ObjectClient,
    ObjectStore,
    RpcEndpoint,
)

__all__ = [
    "CLASSES",
    "CLIENT_ID",
    "GATEWAY_ID",
    "GatewayError",
    "GatewayServer",
    "GetResult",
    "MANIFEST_SCHEMA",
    "ManifestError",
    "ManifestStore",
    "ObjectClient",
    "ObjectManifest",
    "ObjectStore",
    "RpcEndpoint",
    "StripeRef",
    "TrafficArbiter",
    "digest",
    "traffic_class",
]
