"""Cluster-state snapshots (JSON import/export).

The paper's coordinator rebuilds its view of the cluster from HDFS
metadata (``hdfs fsck``).  This module provides the equivalent ops
tooling for our cluster model: serialize the full metadata state —
nodes, roles, health, bandwidths, and every stripe placement — to a
JSON document, and restore an identical :class:`StorageCluster` from
it.  Snapshots round-trip exactly, so they can checkpoint long
experiments or ship failure scenarios between machines.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..core.serde import Schema
from .cluster import StorageCluster
from .node import Node, NodeRole, NodeState

#: schema version written into every snapshot
SNAPSHOT_VERSION = 1


class SnapshotError(ValueError):
    """Raised on malformed or incompatible snapshot documents."""


#: shared serde protocol; snapshots have always carried a version key,
#: so there is no implicit fallback — an unversioned document fails
SNAPSHOT_SCHEMA = Schema(
    kind="snapshot",
    version=SNAPSHOT_VERSION,
    fields=("defaults", "nodes", "stripes"),
    required=("defaults", "nodes", "stripes"),
    error=SnapshotError,
)


def to_dict(cluster: StorageCluster) -> dict:
    """Serialize a cluster to a JSON-compatible dictionary."""
    return SNAPSHOT_SCHEMA.dump({
        "defaults": {
            "disk_bandwidth": cluster.disk_bandwidth,
            "network_bandwidth": cluster.network_bandwidth,
            "chunk_size": cluster.chunk_size,
        },
        "nodes": [
            {
                "node_id": node.node_id,
                "role": node.role.value,
                "state": node.state.value,
                "disk_bandwidth": node.disk_bandwidth,
                "network_bandwidth": node.network_bandwidth,
            }
            for node in sorted(cluster.nodes.values(), key=lambda n: n.node_id)
        ],
        "stripes": [
            {
                "stripe_id": stripe.stripe_id,
                "n": stripe.n,
                "k": stripe.k,
                "placement": list(stripe.placement),
            }
            for stripe in cluster.stripes()
        ],
    })


def from_dict(document: dict) -> StorageCluster:
    """Rebuild a cluster from a snapshot dictionary.

    Raises:
        SnapshotError: on schema or consistency problems.
    """
    body = SNAPSHOT_SCHEMA.load(document)
    defaults = body["defaults"]
    node_docs = body["nodes"]
    stripe_docs = body["stripes"]
    storage = [n for n in node_docs if n["role"] == NodeRole.STORAGE.value]
    standby = [n for n in node_docs if n["role"] == NodeRole.HOT_STANDBY.value]
    if len(storage) + len(standby) != len(node_docs):
        raise SnapshotError("node documents contain unknown roles")
    expected_ids = list(range(len(node_docs)))
    if sorted(n["node_id"] for n in node_docs) != expected_ids:
        raise SnapshotError("node ids must be dense 0..N-1")
    cluster = StorageCluster(
        len(storage),
        num_hot_standby=len(standby),
        disk_bandwidth=defaults["disk_bandwidth"],
        network_bandwidth=defaults["network_bandwidth"],
        chunk_size=defaults["chunk_size"],
    )
    for doc in node_docs:
        node = cluster.node(doc["node_id"])
        expected_role = NodeRole(doc["role"])
        if node.role is not expected_role:
            raise SnapshotError(
                f"node {doc['node_id']}: snapshot role {expected_role.value} "
                "conflicts with the id layout (storage ids must precede "
                "standby ids)"
            )
        node.state = NodeState(doc["state"])
        node.disk_bandwidth = doc.get("disk_bandwidth")
        node.network_bandwidth = doc.get("network_bandwidth")
    for doc in sorted(stripe_docs, key=lambda d: d["stripe_id"]):
        stripe = cluster.add_stripe(doc["n"], doc["k"], doc["placement"])
        if stripe.stripe_id != doc["stripe_id"]:
            raise SnapshotError(
                f"non-contiguous stripe ids: got {doc['stripe_id']}, "
                f"assigned {stripe.stripe_id}"
            )
    cluster.verify_fault_tolerance()
    return cluster


def save(cluster: StorageCluster, path: Union[str, Path]) -> None:
    """Write a snapshot to a JSON file."""
    Path(path).write_text(json.dumps(to_dict(cluster), indent=2))


def load(path: Union[str, Path]) -> StorageCluster:
    """Read a snapshot from a JSON file."""
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"invalid JSON in {path}: {exc}") from exc
    return from_dict(document)
