"""Storage-cluster metadata model: nodes, stripes, placement, rebalance."""

from .chunk import ChunkLocation, NodeId, Stripe, StripeCatalog, StripeId
from .cluster import ClusterError, StorageCluster
from .node import Node, NodeRole, NodeState
from .placement import (
    ParityDeclusteredPlacement,
    PlacementPolicy,
    RandomPlacement,
    RoundRobinPlacement,
    placement_balance,
)
from .rebalance import RebalanceMove, Rebalancer
from .topology import (
    RackAwarePlacement,
    RackTopology,
    RackViolationError,
    verify_rack_tolerance,
)
from . import snapshot

__all__ = [
    "ChunkLocation",
    "ClusterError",
    "Node",
    "NodeId",
    "NodeRole",
    "NodeState",
    "ParityDeclusteredPlacement",
    "PlacementPolicy",
    "RackAwarePlacement",
    "RackTopology",
    "RackViolationError",
    "verify_rack_tolerance",
    "RandomPlacement",
    "RebalanceMove",
    "Rebalancer",
    "RoundRobinPlacement",
    "StorageCluster",
    "Stripe",
    "StripeCatalog",
    "StripeId",
    "placement_balance",
    "snapshot",
]
