"""Cluster failure monitoring: predictor -> STF flag -> repair.

Closes the loop the paper motivates: SMART telemetry feeds a failure
predictor; the first alarm for a node marks it soon-to-fail on the
cluster; a repair planner then restores its chunks *before* the actual
failure.  False alarms still trigger a full repair (the paper's second
assumption: "proactively repairing the chunks of the STF node is
necessary, even though the STF node is a false alarm").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from ..cluster.chunk import NodeId
from ..cluster.cluster import StorageCluster
from ..core.plan import RepairPlan
from .predictor import FailurePredictor
from .smart import DiskTrace


@dataclass(frozen=True)
class StfEvent:
    """A node flagged soon-to-fail by the predictor."""

    day: int
    node_id: NodeId
    disk_id: int
    #: None for a false alarm (the disk never actually fails)
    actual_failure_day: Optional[int]

    @property
    def is_false_alarm(self) -> bool:
        return self.actual_failure_day is None

    @property
    def lead_days(self) -> Optional[int]:
        if self.actual_failure_day is None:
            return None
        return self.actual_failure_day - self.day


@dataclass(frozen=True)
class MissedFailure:
    """A disk that failed with no prior alarm (needs reactive repair)."""

    day: int
    node_id: NodeId
    disk_id: int


@dataclass
class MonitorReport:
    """Everything that happened over the monitored horizon."""

    stf_events: List[StfEvent] = field(default_factory=list)
    missed_failures: List[MissedFailure] = field(default_factory=list)
    plans: Dict[NodeId, RepairPlan] = field(default_factory=dict)
    #: alarms swallowed because their node was already under repair —
    #: multiple disks bound to one node (or a re-alarm before
    #: :meth:`ClusterFailureMonitor.complete_repair`) must not spawn a
    #: second concurrent repair of the same node
    suppressed_alarms: List[StfEvent] = field(default_factory=list)

    @property
    def false_alarms(self) -> List[StfEvent]:
        return [e for e in self.stf_events if e.is_false_alarm]

    @property
    def predicted_failures(self) -> List[StfEvent]:
        return [e for e in self.stf_events if not e.is_false_alarm]


class ClusterFailureMonitor:
    """Replays disk traces against a cluster, day by day.

    Args:
        cluster: the storage cluster whose nodes map 1:1 to disks.
        traces: one :class:`DiskTrace` per storage node, index-aligned
            with ``node_bindings`` (default: node i <-> trace i).
        predictor: the soon-to-fail classifier.
        node_bindings: optional explicit disk-id -> node-id mapping.
    """

    def __init__(
        self,
        cluster: StorageCluster,
        traces: Sequence[DiskTrace],
        predictor: FailurePredictor,
        node_bindings: Optional[Dict[int, NodeId]] = None,
    ):
        self.cluster = cluster
        self.predictor = predictor
        self.traces = list(traces)
        if node_bindings is None:
            node_ids = cluster.storage_node_ids()
            if len(self.traces) > len(node_ids):
                raise ValueError(
                    f"{len(self.traces)} traces but only {len(node_ids)} nodes"
                )
            node_bindings = {
                trace.disk_id: node_ids[i] for i, trace in enumerate(self.traces)
            }
        self.node_bindings = node_bindings
        #: disks whose first alarm (or failure) has already been handled
        self._alarmed: Set[int] = set()
        #: nodes with a repair in flight — further alarms for them are
        #: suppressed until :meth:`complete_repair` re-arms the node
        self._active_repairs: Set[NodeId] = set()
        #: disks currently suppressed (one suppressed event per disk,
        #: not one per day); cleared when their node's repair completes
        self._suppressed: Set[int] = set()

    @property
    def horizon(self) -> int:
        """Days covered by the trace fleet (last sample day + 1)."""
        return max(s.day for t in self.traces for s in t.samples) + 1

    @property
    def active_repairs(self) -> Set[NodeId]:
        """Nodes whose repair is in flight (alarms for them dedupe)."""
        return set(self._active_repairs)

    def complete_repair(self, node_id: NodeId) -> None:
        """Mark ``node_id``'s repair finished; its alarms fire again.

        While a node is under repair, repeated predictor alarms for it
        (a second degrading disk bound to the same node, or the same
        disk re-crossing the threshold) are deduplicated into
        :attr:`MonitorReport.suppressed_alarms` instead of emitting a
        duplicate :class:`StfEvent`.  Callers that execute repairs
        (e.g. :class:`repro.runtime.daemon.RepairDaemon`) call this
        when the repair lands, so a *later* degradation of the
        replaced/repaired node raises a fresh alarm.
        """
        self._active_repairs.discard(node_id)
        for disk_id, bound in self.node_bindings.items():
            if bound == node_id:
                self._suppressed.discard(disk_id)

    def observe_day(
        self,
        day: int,
        report: MonitorReport,
        on_stf: Optional[Callable[[StfEvent], Optional[RepairPlan]]] = None,
        on_failure: Optional[Callable[[MissedFailure], None]] = None,
    ) -> None:
        """Process one day of telemetry (incremental form of :meth:`run`).

        Monitor state (which disks have alarmed, which nodes are under
        repair) lives on the instance, so a daemon can interleave
        ``observe_day`` with repair execution and
        :meth:`complete_repair` calls.
        """
        for trace in self.traces:
            node_id = self.node_bindings[trace.disk_id]
            if trace.disk_id in self._alarmed:
                continue
            # Actual failure without a preceding alarm: missed.
            if trace.failure_day is not None and day >= trace.failure_day:
                self._alarmed.add(trace.disk_id)
                self._suppressed.discard(trace.disk_id)
                self.cluster.node(node_id).mark_failed()
                missed = MissedFailure(day, node_id, trace.disk_id)
                report.missed_failures.append(missed)
                if on_failure is not None:
                    on_failure(missed)
                continue
            window = trace.window(day, self.predictor.window_days)
            if len(window) < self.predictor.window_days:
                continue
            if not self.predictor.predict(window):
                continue
            event = StfEvent(
                day=day,
                node_id=node_id,
                disk_id=trace.disk_id,
                actual_failure_day=trace.failure_day,
            )
            if node_id in self._active_repairs:
                # Dedupe: the node is already being repaired.  Record
                # the alarm once per disk and re-check after the active
                # repair completes.
                if trace.disk_id not in self._suppressed:
                    self._suppressed.add(trace.disk_id)
                    report.suppressed_alarms.append(event)
                continue
            self._alarmed.add(trace.disk_id)
            self._active_repairs.add(node_id)
            self.cluster.node(node_id).mark_soon_to_fail()
            report.stf_events.append(event)
            if on_stf is not None:
                plan = on_stf(event)
                if plan is not None:
                    report.plans[node_id] = plan

    def run(
        self,
        on_stf: Optional[Callable[[StfEvent], Optional[RepairPlan]]] = None,
        on_failure: Optional[Callable[[MissedFailure], None]] = None,
    ) -> MonitorReport:
        """Replay the horizon; invoke ``on_stf`` at each first alarm.

        ``on_stf`` typically plans (and simulates/executes) the
        predictive repair and returns the plan for the report.  The
        node is flagged soon-to-fail on the cluster before the callback
        runs.  ``on_failure`` fires for failures that arrive with no
        prior alarm (the node is already marked failed) — the hook for
        reactive repair.

        Batch callers that finish each repair within its callback may
        call :meth:`complete_repair` from ``on_stf``; otherwise every
        node's first alarm wins and later alarms for the same node land
        in :attr:`MonitorReport.suppressed_alarms`.
        """
        report = MonitorReport()
        for day in range(self.horizon):
            self.observe_day(day, report, on_stf=on_stf, on_failure=on_failure)
        return report
