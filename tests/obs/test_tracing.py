"""Tracer semantics and trace-document schema round-trip."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import (
    TRACE_SCHEMA_VERSION,
    SimClock,
    TraceDocument,
    TraceError,
    Tracer,
)


class TestSpans:
    def test_lexical_nesting(self):
        tracer = Tracer(clock=SimClock())
        with tracer.span("repair") as repair:
            with tracer.span("round", round=0) as round_span:
                inner = tracer.start_span("action").finish()
        assert repair.parent_id is None
        assert round_span.parent_id == repair.span_id
        assert inner.parent_id == round_span.span_id

    def test_explicit_parent_wins_over_stack(self):
        tracer = Tracer(clock=SimClock())
        orphan_parent = tracer.start_span("round")
        with tracer.span("repair"):
            child = tracer.start_span("action", parent=orphan_parent)
        assert child.parent_id == orphan_parent.span_id

    def test_parenting_is_per_thread(self):
        tracer = Tracer(clock=SimClock())
        results = {}

        def other_thread():
            results["span"] = tracer.start_span("assembly").finish()

        with tracer.span("repair"):
            t = threading.Thread(target=other_thread)
            t.start()
            t.join()
        # The agent-thread span must not nest under the coordinator's
        # lexical repair span.
        assert results["span"].parent_id is None

    def test_finish_is_idempotent(self):
        clock = SimClock()
        tracer = Tracer(clock=clock)
        span = tracer.start_span("x")
        clock.advance_to(1.0)
        span.finish()
        clock.advance_to(5.0)
        span.finish()
        assert span.duration == 1.0
        assert len(tracer.spans("x")) == 1

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("repair", stf=3) as span:
            span.annotate(extra=1)
        assert span.end is not None  # spans stay usable as inert objects
        assert tracer.spans() == []

    def test_sim_clock_never_goes_backward(self):
        clock = SimClock()
        clock.advance_to(2.0)
        clock.advance_to(1.0)
        assert clock.now() == 2.0


class TestDocumentRoundTrip:
    def _trace(self) -> Tracer:
        clock = SimClock()
        tracer = Tracer(clock=clock)
        with tracer.span("repair", stf=2):
            clock.advance_to(1.0)
            with tracer.span("round", round=0):
                span = tracer.start_span("action", method="migration")
                clock.advance_to(3.0)
                span.finish(attempt=0)
        return tracer

    def test_round_trip_preserves_tree_and_attrs(self, tmp_path):
        tracer = self._trace()
        path = tmp_path / "trace.json"
        tracer.save(path)
        doc = TraceDocument.load(path)
        (repair,) = doc.named("repair")
        assert repair["attrs"] == {"stf": 2}
        (round_span,) = doc.children_of(repair["id"], "round")
        (action,) = doc.children_of(round_span["id"], "action")
        assert action["attrs"] == {"method": "migration", "attempt": 0}
        assert action["start"] == 1.0 and action["end"] == 3.0
        assert doc.roots() == [repair]
        assert doc.clock == "SimClock"

    def test_document_identical_after_reserialization(self, tmp_path):
        original = self._trace().to_dict()
        reloaded = TraceDocument(json.loads(json.dumps(original)))
        assert [s for s in reloaded.walk()] == original["spans"]

    def test_version_mismatch_rejected(self):
        with pytest.raises(TraceError, match="version"):
            TraceDocument({"version": TRACE_SCHEMA_VERSION + 1, "spans": []})

    def test_missing_spans_rejected(self):
        with pytest.raises(TraceError, match="spans"):
            TraceDocument({"version": TRACE_SCHEMA_VERSION})

    def test_duplicate_span_id_rejected(self):
        span = {"id": 1, "parent": None, "name": "x", "start": 0.0,
                "end": 1.0, "attrs": {}}
        with pytest.raises(TraceError, match="duplicate"):
            TraceDocument(
                {"version": TRACE_SCHEMA_VERSION, "spans": [span, dict(span)]}
            )

    def test_malformed_record_rejected(self):
        with pytest.raises(TraceError, match="malformed"):
            TraceDocument(
                {"version": TRACE_SCHEMA_VERSION, "spans": [{"id": 1}]}
            )

    def test_invalid_json_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(TraceError, match="JSON"):
            TraceDocument.load(path)
