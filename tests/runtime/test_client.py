"""Tests for the storage client's direct and degraded read paths."""

import pytest

from repro.cluster import StorageCluster
from repro.core.planner import FastPRPlanner, apply_plan
from repro.ec import make_codec
from repro.ec.codec import DecodeError
from repro.runtime.client import StorageClient
from repro.runtime.testbed import EmulatedTestbed

CHUNK = 32 * 1024


@pytest.fixture(scope="module")
def rig(tmp_path_factory):
    cluster = StorageCluster.random(
        10,
        12,
        5,
        3,
        num_hot_standby=2,
        seed=71,
        disk_bandwidth=1e9,
        network_bandwidth=1e9,
        chunk_size=CHUNK,
    )
    codec = make_codec("rs(5,3)")
    testbed = EmulatedTestbed(
        cluster, codec, workdir=tmp_path_factory.mktemp("client")
    )
    testbed.start()
    testbed.load_random_data(seed=72)
    yield cluster, codec, testbed
    testbed.shutdown()


class TestDirectReads:
    def test_read_returns_stored_bytes(self, rig):
        cluster, codec, testbed = rig
        client = StorageClient(testbed, throttled=False)
        stripe = cluster.stripe(0)
        for index, node_id in enumerate(stripe.placement):
            data = client.read(0, index)
            assert data == testbed.stores[node_id].read(0)
        assert client.stats.direct_reads == 5
        assert client.stats.degraded_reads == 0

    def test_read_stripe_data_matches_encode(self, rig):
        cluster, codec, testbed = rig
        client = StorageClient(testbed, throttled=False)
        payload = client.read_stripe_data(1)
        assert len(payload) == codec.k * CHUNK
        # Re-encoding the data must reproduce the stored parity chunks.
        data_chunks = [
            payload[i * CHUNK : (i + 1) * CHUNK] for i in range(codec.k)
        ]
        coded = codec.encode(data_chunks)
        stripe = cluster.stripe(1)
        for index in range(codec.n):
            assert coded[index] == testbed.stores[stripe.node_of(index)].read(1)


class TestDegradedReads:
    def test_failed_node_triggers_decode(self, rig):
        cluster, codec, testbed = rig
        client = StorageClient(testbed, throttled=False)
        stripe = cluster.stripe(2)
        victim_index = 1
        victim_node = stripe.node_of(victim_index)
        original = testbed.stores[victim_node].read(2)
        cluster.node(victim_node).mark_failed()
        try:
            data = client.read(2, victim_index)
            assert data == original
            assert client.stats.degraded_reads == 1
        finally:
            cluster.node(victim_node).state = (
                type(cluster.node(victim_node).state).HEALTHY
            )

    def test_degraded_disallowed_raises(self, rig):
        cluster, codec, testbed = rig
        client = StorageClient(testbed, throttled=False)
        stripe = cluster.stripe(3)
        victim = stripe.node_of(0)
        cluster.node(victim).mark_failed()
        try:
            with pytest.raises(DecodeError, match="disabled"):
                client.read(3, 0, allow_degraded=False)
        finally:
            cluster.node(victim).state = type(cluster.node(victim).state).HEALTHY

    def test_reads_after_predictive_repair(self, rig):
        """Repair then shutdown: every chunk still readable directly."""
        cluster, codec, testbed = rig
        stf = max(cluster.storage_node_ids(), key=cluster.load_of)
        cluster.node(stf).mark_soon_to_fail()
        plan = FastPRPlanner(seed=0).plan(cluster, stf)
        testbed.execute(plan)
        testbed.verify_plan(plan)
        apply_plan(cluster, plan)
        cluster.decommission(stf)
        client = StorageClient(testbed, throttled=False)
        for stripe in cluster.stripes():
            for index in range(stripe.n):
                client.read(stripe.stripe_id, index)
        # Metadata points at the repaired copies, so no degraded reads.
        assert client.stats.degraded_reads == 0
