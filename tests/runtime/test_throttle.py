"""Tests for rate limiters and transfer reservations."""

import time

import pytest

from repro.runtime.throttle import RateLimiter, reserve_transfer, sleep_until


class TestRateLimiter:
    def test_validation(self):
        with pytest.raises(ValueError):
            RateLimiter(0)
        with pytest.raises(ValueError):
            RateLimiter(-5)

    def test_unlimited(self):
        limiter = RateLimiter(None)
        assert limiter.unlimited
        before = time.monotonic()
        limiter.throttle(10**9)
        assert time.monotonic() - before < 0.05

    def test_reserve_accumulates(self):
        limiter = RateLimiter(1000.0)
        d1 = limiter.reserve(100)
        d2 = limiter.reserve(100)
        assert d2 - d1 == pytest.approx(0.1, abs=0.01)
        assert limiter.bytes_total == 200

    def test_throttle_sleeps(self):
        limiter = RateLimiter(10_000.0)
        start = time.monotonic()
        limiter.throttle(1000)  # 0.1 s
        elapsed = time.monotonic() - start
        assert elapsed >= 0.09

    def test_throughput_approximation(self):
        limiter = RateLimiter(100_000.0)
        start = time.monotonic()
        for _ in range(10):
            limiter.throttle(2000)  # total 20000 B -> 0.2 s
        elapsed = time.monotonic() - start
        assert 0.18 <= elapsed <= 0.4

    def test_negative_bytes(self):
        with pytest.raises(ValueError):
            RateLimiter(10.0).reserve(-1)

    def test_idle_gap_not_credited(self):
        # A long idle period must not allow a burst above the rate.
        limiter = RateLimiter(10_000.0)
        limiter.throttle(100)
        time.sleep(0.05)
        start = time.monotonic()
        limiter.throttle(1000)
        assert time.monotonic() - start >= 0.09


class TestSmallGrantFairness:
    """A large repair reservation must not starve small client grants."""

    def test_small_grant_jumps_large_backlog(self):
        limiter = RateLimiter(1_000_000.0, small_grant_bytes=64 * 1024)
        # Repair dumps a 10 MB reservation: 10 s of backlog.
        limiter.reserve(10 * 1024 * 1024)
        now = time.monotonic()
        # A 4 KiB client request waits out only its own duration,
        # not the 10 s backlog.
        deadline = limiter.reserve(4096)
        assert deadline - now == pytest.approx(4096 / 1e6, abs=0.01)

    def test_small_grants_serialize_among_themselves(self):
        limiter = RateLimiter(1_000_000.0, small_grant_bytes=64 * 1024)
        limiter.reserve(10 * 1024 * 1024)
        d1 = limiter.reserve(32 * 1024)
        d2 = limiter.reserve(32 * 1024)
        # Still a serial device for concurrent small grants.
        assert d2 - d1 == pytest.approx(32 * 1024 / 1e6, abs=0.01)

    def test_fast_path_is_work_conserving(self):
        limiter = RateLimiter(1_000_000.0, small_grant_bytes=64 * 1024)
        tail = limiter.reserve(10 * 1024 * 1024)
        limiter.reserve(4096)
        # The backlog pays for the jumped grant: the device tail moved
        # back by exactly the small grant's duration.
        assert limiter._next_free - tail == pytest.approx(
            4096 / 1e6, abs=1e-6
        )
        assert limiter.bytes_total == 10 * 1024 * 1024 + 4096

    def test_no_large_pending_means_pure_fifo(self):
        limiter = RateLimiter(1_000_000.0, small_grant_bytes=64 * 1024)
        # Only small reservations queued: classic FIFO accumulation.
        d1 = limiter.reserve(4096)
        d2 = limiter.reserve(4096)
        assert d2 - d1 == pytest.approx(4096 / 1e6, abs=0.005)

    def test_zero_small_grant_disables_fast_path(self):
        limiter = RateLimiter(1_000_000.0, small_grant_bytes=0)
        backlog = limiter.reserve(10 * 1024 * 1024)
        deadline = limiter.reserve(4096)
        assert deadline >= backlog

    def test_client_wait_bounded_under_concurrent_repair(self):
        # End-to-end fairness: repair threads hammer the NIC with large
        # reservations while a client thread issues small ones; every
        # client wait must stay bounded by its own duration plus the
        # small-grant queue, never the repair backlog.
        import threading

        limiter = RateLimiter(10_000_000.0, small_grant_bytes=256 * 1024)
        stop = threading.Event()

        def repair():
            while not stop.is_set():
                limiter.reserve(5 * 1024 * 1024)  # 0.5 s each
                time.sleep(0.001)

        workers = [threading.Thread(target=repair) for _ in range(4)]
        for worker in workers:
            worker.start()
        try:
            time.sleep(0.01)  # let the backlog build
            waits = []
            for _ in range(20):
                now = time.monotonic()
                waits.append(limiter.reserve(8192) - now)
            # 8 KiB at 10 MB/s is ~0.8 ms; allow the small-grant queue
            # plus scheduling noise, but nothing near the multi-second
            # repair backlog.
            assert max(waits) < 0.25
        finally:
            stop.set()
            for worker in workers:
                worker.join()

    def test_transfer_jumps_backlogged_sender(self):
        sender = RateLimiter(1_000_000.0, small_grant_bytes=64 * 1024)
        receiver = RateLimiter(1_000_000.0, small_grant_bytes=64 * 1024)
        sender.reserve(10 * 1024 * 1024)
        now = time.monotonic()
        deadline = reserve_transfer(sender, receiver, 4096)
        assert deadline - now == pytest.approx(4096 / 1e6, abs=0.01)
        # Work conservation on the jumped side.
        assert sender._next_free - now == pytest.approx(
            (10 * 1024 * 1024 + 4096) / 1e6, rel=0.01
        )

    def test_transfer_queues_normally_when_no_large_pending(self):
        sender = RateLimiter(1_000_000.0, small_grant_bytes=64 * 1024)
        receiver = RateLimiter(1_000_000.0, small_grant_bytes=64 * 1024)
        d1 = reserve_transfer(sender, receiver, 4096)
        d2 = reserve_transfer(sender, receiver, 4096)
        assert d2 - d1 == pytest.approx(4096 / 1e6, abs=0.005)


class TestReserveTransfer:
    def test_slower_side_governs(self):
        fast = RateLimiter(1_000_000.0)
        slow = RateLimiter(10_000.0)
        start = time.monotonic()
        deadline = reserve_transfer(fast, slow, 1000)  # 0.1 s at slow rate
        assert deadline - start == pytest.approx(0.1, abs=0.02)

    def test_both_sides_reserved(self):
        a = RateLimiter(10_000.0)
        b = RateLimiter(10_000.0)
        reserve_transfer(a, b, 500)
        assert a.bytes_total == 500
        assert b.bytes_total == 500
        # A follow-up on either side starts after the joint reservation.
        d_a = a.reserve(0)
        now = time.monotonic()
        assert d_a >= now + 0.02

    def test_unlimited_pair(self):
        a = RateLimiter(None)
        b = RateLimiter(None)
        deadline = reserve_transfer(a, b, 10**9)
        assert deadline <= time.monotonic() + 0.01

    def test_sleep_until_past_deadline(self):
        start = time.monotonic()
        sleep_until(start - 1.0)
        assert time.monotonic() - start < 0.05
