"""Sharded multi-coordinator repair that survives correlated failures.

A single coordinator is a single point of control-plane failure: one
rack losing power can take out the coordinator *and* a batch of agents
in the same instant, and the whole repair stalls until something
notices.  :class:`MultiCoordinator` shards the stripe space across
``N`` coordinators (consistent hash, :class:`~repro.core.plan.ShardMap`)
so the blast radius of a coordinator death is one shard — and hands a
dead shard to a survivor automatically.

Design:

* **Stable shard identity.**  Shard ``k``'s coordinator lives at
  transport endpoint ``-(k + 1)`` (:func:`shard_coordinator_id`)
  forever.  A takeover re-attaches a successor at the *same* endpoint
  under a bumped epoch; the per-endpoint fencing agents already do for
  single-coordinator recovery then fences the dead incarnation with no
  new protocol.
* **Own journal + epoch per shard.**  Each shard appends to
  ``<journal_dir>/shard-<k>.journal``.  Takeover is exactly
  :meth:`~repro.runtime.coordinator.Coordinator.recover` + ``resume()``
  on that file, plus a :class:`~repro.runtime.journal.ShardTakeover`
  record so the journal itself shows who owned the shard when.
* **Leases detect wedged (not just dead) owners.**  Every shard
  coordinator renews a lease on each supervision-loop iteration (and
  on every budget wait tick).  The supervisor treats a dead thread
  *or* an expired lease as a crashed owner; a live zombie is first
  killed through its journal (``kill_on_next_append``) so it can never
  append — much less act — after its successor takes over.
* **Shared helper budget.**  Shards advance through their round
  sequences independently, so two shards may want the same helper at
  once.  All shard coordinators share one
  :class:`~repro.core.scheduling.HelperBudget`; rounds queue in
  deadline-priority order instead of stampeding the same NICs.

Correlated failures enter through the fault injector: a
:class:`~repro.runtime.faults.DomainCrashFault` crashes a whole rack of
agents and, via the injector's ``on_kill_coordinator`` callback,
arms the co-located shard coordinator's journal to die at its next
write-ahead append — the same window a real process death leaves.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Set, Union

from ..cluster.cluster import StorageCluster
from ..core.plan import RepairPlan, ShardMap, split_plan
from ..core.scheduling import HelperBudget
from ..ec.codec import ErasureCodec
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import Tracer
from .config import DEFAULT_CONFIG, RuntimeConfig
from .coordinator import Coordinator, RuntimeResult, shard_coordinator_id
from .journal import CoordinatorCrash, RepairJournal, ShardTakeover
from .transport import Network


class ShardFailedError(RuntimeError):
    """A shard became unrecoverable (no survivor, or takeover storm)."""


class LeaseTable:
    """Last-renewal timestamps per shard, with an expiry test.

    Thread-safe.  A lease is *held* from :meth:`renew` until
    ``timeout`` seconds pass without another renewal; the supervisor
    treats expiry as owner death.  ``revoke`` forgets a shard so a
    successor starts with a fresh lease.
    """

    def __init__(self, timeout: float):
        if timeout <= 0:
            raise ValueError("lease timeout must be positive")
        self.timeout = timeout
        self._lock = threading.Lock()
        self._renewed: Dict[int, float] = {}

    def renew(self, shard: int) -> None:
        with self._lock:
            self._renewed[shard] = time.monotonic()

    def expired(self, shard: int) -> bool:
        with self._lock:
            last = self._renewed.get(shard)
        if last is None:
            return False  # never renewed: grant the grace of a fresh start
        return time.monotonic() - last > self.timeout

    def revoke(self, shard: int) -> None:
        with self._lock:
            self._renewed.pop(shard, None)


@dataclass(frozen=True)
class TakeoverEvent:
    """One shard ownership handoff, as reported to the caller."""

    shard: int
    adopter: int
    epoch: int


@dataclass
class MultiRepairResult:
    """Outcome of a sharded repair run.

    ``per_shard`` holds each shard's *final incarnation's* result —
    after a takeover that result already folds in the chunks the dead
    incarnation completed (``recovered_chunks``) and lists every
    executed action of the shard, so verification needs no cross-
    incarnation merging.
    """

    total_time: float
    per_shard: Dict[int, RuntimeResult] = field(default_factory=dict)
    takeovers: List[TakeoverEvent] = field(default_factory=list)

    @property
    def chunks_repaired(self) -> int:
        return sum(r.chunks_repaired for r in self.per_shard.values())

    @property
    def recovered_chunks(self) -> int:
        return sum(r.recovered_chunks for r in self.per_shard.values())

    @property
    def executed_actions(self):
        actions = []
        for shard in sorted(self.per_shard):
            actions.extend(self.per_shard[shard].executed_actions)
        return actions

    @property
    def degraded(self) -> bool:
        return bool(self.takeovers) or any(
            r.degraded for r in self.per_shard.values()
        )

    # Aggregates over the shards, so a MultiRepairResult can stand in
    # for a RuntimeResult wherever a run summary is written.

    @property
    def round_times(self) -> List[float]:
        times: List[float] = []
        for shard in sorted(self.per_shard):
            times.extend(self.per_shard[shard].round_times)
        return times

    @property
    def bytes_transferred(self) -> int:
        return sum(r.bytes_transferred for r in self.per_shard.values())

    @property
    def retries(self) -> int:
        return sum(r.retries for r in self.per_shard.values())

    @property
    def replans(self) -> int:
        return sum(r.replans for r in self.per_shard.values())

    @property
    def nacks(self) -> int:
        return sum(r.nacks for r in self.per_shard.values())

    @property
    def converted_migrations(self) -> int:
        return sum(r.converted_migrations for r in self.per_shard.values())

    @property
    def dead_nodes(self) -> List[int]:
        dead: Set[int] = set()
        for r in self.per_shard.values():
            dead.update(r.dead_nodes)
        return sorted(dead)


class _ShardRun:
    """One incarnation of one shard's coordinator, on its own thread."""

    def __init__(self, shard: int, coordinator: Coordinator, work: Callable):
        self.shard = shard
        self.coordinator = coordinator
        self.result: Optional[RuntimeResult] = None
        self.error: Optional[BaseException] = None
        self.thread = threading.Thread(
            target=self._main,
            args=(work,),
            name=f"shard-coordinator-{shard}",
            daemon=True,
        )

    def _main(self, work: Callable) -> None:
        try:
            self.result = work()
        except BaseException as exc:  # noqa: BLE001 - reported to supervisor
            self.error = exc

    def start(self) -> None:
        self.thread.start()


class MultiCoordinator:
    """Drives one repair plan through ``num_shards`` shard coordinators.

    Args:
        network: shared transport; every shard coordinator attaches at
            its :func:`shard_coordinator_id` endpoint (shard 0 keeps
            the conventional ``-1``, so agents' heartbeat target stays
            valid).
        cluster / codec / packet_size / config / metrics / tracer: as
            for :class:`~repro.runtime.coordinator.Coordinator`; shared
            by every shard.
        journal_dir: directory holding one write-ahead journal per
            shard (``shard-<k>.journal``); created if absent.
        num_shards: coordinator count; stripe ownership is
            ``ShardMap(num_shards)``.
        budget: shared helper/NIC budget; a fresh
            ``HelperBudget(per_node=1)`` (the paper's free-node
            assumption) is created when omitted and ``num_shards > 1``.
        max_takeovers: hard cap on total takeovers before the run
            fails loudly instead of crash-looping.
    """

    def __init__(
        self,
        network: Network,
        cluster: StorageCluster,
        codec: ErasureCodec,
        packet_size: int,
        journal_dir: Union[str, Path],
        num_shards: int = 2,
        config: Optional[RuntimeConfig] = None,
        budget: Optional[HelperBudget] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        max_takeovers: Optional[int] = None,
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.network = network
        self.cluster = cluster
        self.codec = codec
        self.packet_size = packet_size
        self.config = config or DEFAULT_CONFIG
        self.shard_map = ShardMap(num_shards)
        self.journal_dir = Path(journal_dir)
        self.journal_dir.mkdir(parents=True, exist_ok=True)
        if budget is None and num_shards > 1:
            budget = HelperBudget(per_node=1)
        self.budget = budget
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.max_takeovers = (
            max_takeovers if max_takeovers is not None else 2 * num_shards + 2
        )
        self.lease = LeaseTable(self.config.lease_timeout)
        self._takeovers_counter = self.metrics.counter(
            "coord_takeovers_total",
            "shard ownership handoffs after a coordinator death, by shard",
        )
        self._shards_gauge = self.metrics.gauge(
            "coord_active_shards", "shard coordinators currently running"
        )
        #: serializes kill requests against takeover re-registration
        self._lock = threading.Lock()
        self._active: Dict[int, _ShardRun] = {}
        self._pending_kills: Set[int] = set()
        self.takeovers: List[TakeoverEvent] = []

    # -- fault-injection surface ---------------------------------------

    def kill_shard(self, shard: int) -> None:
        """Arm shard ``shard``'s coordinator to die at its next append.

        The :class:`~repro.runtime.faults.FaultInjector` calls this for
        coordinators co-located in a dying failure domain.  A kill that
        lands mid-takeover (no incarnation registered right now) is
        remembered and armed on the successor — the
        coordinator-kill-during-takeover window is covered, not raced.
        """
        with self._lock:
            run = self._active.get(shard)
            if run is None or run.coordinator.journal is None:
                self._pending_kills.add(shard)
                return
            run.coordinator.journal.kill_on_next_append()

    def journal_path(self, shard: int) -> Path:
        return self.journal_dir / f"shard-{shard}.journal"

    # -- the run ---------------------------------------------------------

    def execute(
        self, plan: RepairPlan, packet_size: Optional[int] = None
    ) -> MultiRepairResult:
        """Split ``plan`` across the shards and run them to completion.

        Blocks until every shard finished (taking over crashed shards
        along the way) or the run is unrecoverable.

        Raises:
            ShardFailedError: every shard's owner died with no survivor
                left to adopt, or the takeover cap was exceeded.
        """
        packet = packet_size or self.packet_size
        sub_plans = split_plan(plan, self.shard_map)
        start = time.monotonic()
        attrs = dict(
            stf=plan.stf_node,
            scenario=plan.scenario.value,
            shards=self.shard_map.num_shards,
            chunks=plan.total_chunks,
        )
        with self.tracer.span("multi_repair", **attrs) as span:
            outcome = self._supervise(sub_plans, packet)
            span.annotate(takeovers=len(outcome.takeovers))
        outcome.total_time = time.monotonic() - start
        return outcome

    def _supervise(
        self, sub_plans: List[RepairPlan], packet: int
    ) -> MultiRepairResult:
        outcome = MultiRepairResult(total_time=0.0)
        self._packet = packet
        for shard, sub_plan in enumerate(sub_plans):
            run = self._spawn(shard, self._fresh_coordinator(shard), sub_plan)
            run.start()
        try:
            while self._active:
                self._sweep(outcome)
                time.sleep(self.config.poll_interval / 4)
        finally:
            self._shards_gauge.set(0)
        return outcome

    def _sweep(self, outcome: MultiRepairResult) -> None:
        """One supervision pass: collect the dead, fence the wedged."""
        with self._lock:
            runs = list(self._active.items())
        self._shards_gauge.set(len(runs))
        for shard, run in runs:
            if run.thread.is_alive():
                if self.lease.expired(shard):
                    # Wedged zombie: make sure it cannot append (and so
                    # cannot have acted on un-journaled state) after the
                    # successor exists, then treat it as dead.  It will
                    # raise CoordinatorCrash at its next write-ahead.
                    if run.coordinator.journal is not None:
                        run.coordinator.journal.kill_on_next_append()
                    self.lease.revoke(shard)
                continue
            run.thread.join()
            with self._lock:
                if self._active.get(shard) is not run:
                    continue  # replaced while we looked; next sweep sees it
                del self._active[shard]
            if run.error is None:
                outcome.per_shard[shard] = run.result
                self.lease.revoke(shard)
            elif isinstance(run.error, CoordinatorCrash):
                self._take_over(shard, run, outcome)
            else:
                raise run.error

    def _take_over(
        self, shard: int, dead: _ShardRun, outcome: MultiRepairResult
    ) -> None:
        if len(self.takeovers) >= self.max_takeovers:
            raise ShardFailedError(
                f"shard {shard} crashed but the takeover cap "
                f"({self.max_takeovers}) is exhausted"
            ) from dead.error
        adopter = self._choose_adopter(shard, outcome)
        if adopter is None:
            raise ShardFailedError(
                f"shard {shard} crashed with no surviving coordinator "
                "to adopt it"
            ) from dead.error
        dead.coordinator.close()
        try:
            self.network.detach(shard_coordinator_id(shard))
        except KeyError:
            pass
        successor = Coordinator.recover(
            self.journal_path(shard),
            self.network,
            self.cluster,
            self.codec,
            config=self.config,
            packet_size=self.packet_size,
            metrics=self.metrics,
            tracer=self.tracer,
            coordinator_id=shard_coordinator_id(shard),
            shard=shard,
            budget=self.budget,
            lease_renew=self._renewer(shard),
        )
        # Journaled before any re-issued command: the shard's own log
        # records the handoff and the epoch it happened under.
        successor.journal.append(
            ShardTakeover(successor.epoch, shard, adopter)
        )
        event = TakeoverEvent(shard=shard, adopter=adopter, epoch=successor.epoch)
        self.takeovers.append(event)
        outcome.takeovers.append(event)
        self._takeovers_counter.inc(shard=shard)
        self.lease.renew(shard)
        run = self._spawn(shard, successor, plan=None)
        run.start()

    def _choose_adopter(
        self, dead_shard: int, outcome: MultiRepairResult
    ) -> Optional[int]:
        """Lowest-index shard that is still healthy (running or done).

        The adopter is accountability, not extra work: the successor
        runs on its own thread either way.  ``None`` means nobody
        survived — the whole control plane is gone and the run fails.
        """
        with self._lock:
            alive = {
                shard
                for shard, run in self._active.items()
                if shard != dead_shard and run.thread.is_alive()
            }
        survivors = alive | set(outcome.per_shard)
        survivors.discard(dead_shard)
        if not survivors:
            return None if self.shard_map.num_shards > 1 else -1
        return min(survivors)

    def _renewer(self, shard: int) -> Callable[[], None]:
        return lambda: self.lease.renew(shard)

    def _fresh_coordinator(self, shard: int) -> Coordinator:
        journal = RepairJournal(
            self.journal_path(shard),
            fsync=self.config.journal_fsync,
            metrics=self.metrics,
        )
        return Coordinator(
            self.network,
            self.cluster,
            self.codec,
            self.packet_size,
            config=self.config,
            journal=journal,
            metrics=self.metrics,
            tracer=self.tracer,
            coordinator_id=shard_coordinator_id(shard),
            shard=shard,
            budget=self.budget,
            lease_renew=self._renewer(shard),
        )

    def _spawn(
        self, shard: int, coordinator: Coordinator, plan: Optional[RepairPlan]
    ) -> _ShardRun:
        packet = getattr(self, "_packet", self.packet_size)
        if plan is not None:
            work = lambda: coordinator.execute(plan, packet_size=packet)  # noqa: E731
        else:
            work = coordinator.resume
        run = _ShardRun(shard, coordinator, work)
        self.lease.renew(shard)
        with self._lock:
            self._active[shard] = run
            if shard in self._pending_kills and coordinator.journal is not None:
                self._pending_kills.discard(shard)
                coordinator.journal.kill_on_next_append()
        return run

    def close(self) -> None:
        """Release every active incarnation's journal (idempotent)."""
        with self._lock:
            runs = list(self._active.values())
        for run in runs:
            run.coordinator.close()
