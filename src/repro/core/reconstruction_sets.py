"""Algorithm 1: finding reconstruction sets.

A *reconstruction set* is a group of STF-node chunks that can all be
reconstructed in the same repair round: their stripes can be assigned
``k`` helper nodes each, with every healthy node serving at most one
chunk in the round (Section IV-B).

The implementation follows the paper's pseudocode:

* MATCH(R, Ci) — can ``R ∪ {Ci}`` still be fully matched?  Realized by
  :class:`~repro.core.matching.IncrementalStripeMatcher.try_add`.
* FIND(C) — grow an initial set greedily, then *optimize* it by
  swapping one member ``Ci`` with an outside chunk ``Cj`` whenever that
  lets additional chunks ``A_{i,j}`` join (Lines 18-38).
* MAIN(C) — call FIND until every chunk is covered, yielding sets
  ``R_1 … R_d``.

``optimize=False`` reproduces the paper's ``d_ini`` baseline for the
Experiment B.5 microbenchmark, and ``group_size`` implements the
Section IV-D mitigation of running Algorithm 1 per chunk group.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..cluster.chunk import ChunkLocation, NodeId
from ..cluster.cluster import StorageCluster
from .matching import IncrementalStripeMatcher


@dataclass
class Algorithm1Stats:
    """Bookkeeping for the Experiment B.5 microbenchmarks."""

    match_calls: int = 0
    swaps_applied: int = 0
    initial_sets_sizes: List[int] = field(default_factory=list)


class ReconstructionSetFinder:
    """Runs Algorithm 1 for one STF node on a cluster.

    Args:
        cluster: the cluster metadata.
        stf_node: the soon-to-fail node whose chunks are repaired.
        optimize: run the swap-optimization phase (Lines 18-38).
        group_size: if set, partition the chunks into groups of this
            size and run Algorithm 1 per group (Section IV-D).
        seed: ordering randomization for tie-breaking; ``None`` keeps
            catalog order (deterministic).
        fanin: helpers needed per chunk; defaults to the stripes'
            ``k``.  Repair-efficient codes pass ``k'`` (LRC: ``k/l``),
            per the paper's Section III extension.
        helper_fn: candidate-helper override, mapping a chunk to the
            nodes its repair may read from.  Defaults to all healthy
            holders of the stripe; an LRC passes the chunk's local
            group (see :mod:`repro.core.lrc_support`).
    """

    def __init__(
        self,
        cluster: StorageCluster,
        stf_node: NodeId,
        optimize: bool = True,
        group_size: Optional[int] = None,
        seed: Optional[int] = None,
        fanin: Optional[int] = None,
        helper_fn=None,
    ):
        self.cluster = cluster
        self.stf_node = stf_node
        self.optimize = optimize
        self.group_size = group_size
        self.fanin = fanin
        self.helper_fn = helper_fn
        self._rng = random.Random(seed) if seed is not None else None
        self.stats = Algorithm1Stats()
        self._helpers_cache: Dict[tuple, List[NodeId]] = {}

    # ------------------------------------------------------------------

    def find_all(
        self, chunks: Optional[Sequence[ChunkLocation]] = None
    ) -> List[List[ChunkLocation]]:
        """MAIN(C): return reconstruction sets covering every chunk."""
        if chunks is None:
            chunks = self.cluster.chunks_on_node(self.stf_node)
        chunks = list(chunks)
        if not chunks:
            return []
        self._k = self._uniform_k(chunks)
        if self._rng is not None:
            self._rng.shuffle(chunks)
        if self.group_size is not None and self.group_size > 0:
            sets: List[List[ChunkLocation]] = []
            for start in range(0, len(chunks), self.group_size):
                sets.extend(self._main(chunks[start : start + self.group_size]))
            return sets
        return self._main(chunks)

    def _main(self, chunks: List[ChunkLocation]) -> List[List[ChunkLocation]]:
        remaining = list(chunks)
        sets: List[List[ChunkLocation]] = []
        while remaining:
            found, remaining = self._find(remaining)
            if not found:
                # Unrepairable chunk (fewer than k healthy helpers):
                # surface it rather than looping forever.
                bad = remaining[0]
                raise ValueError(
                    f"chunk {bad} cannot be reconstructed: fewer than "
                    f"k={self._k} healthy helpers"
                )
            sets.append(found)
        return sets

    # ------------------------------------------------------------------

    def _find(
        self, chunks: List[ChunkLocation]
    ) -> tuple[List[ChunkLocation], List[ChunkLocation]]:
        """FIND(C): one reconstruction set plus the residual chunks."""
        matcher = IncrementalStripeMatcher(self._k)
        in_set: List[ChunkLocation] = []
        residual: List[ChunkLocation] = []
        for chunk in chunks:
            self.stats.match_calls += 1
            if matcher.try_add(chunk.stripe_id, self._helpers(chunk)):
                in_set.append(chunk)
            else:
                residual.append(chunk)
        self.stats.initial_sets_sizes.append(len(in_set))
        if not self.optimize:
            return in_set, residual
        # Swap-optimization phase (Lines 18-38).
        while True:
            best_gain: List[ChunkLocation] = []
            best_swap = None  # (Ci in R, Cj in C)
            for ci in in_set:
                base = self._matcher_without(in_set, ci)
                if base is None:
                    continue
                for cj in residual:
                    gained = self._swap_gain(base, cj, residual)
                    if len(gained) > len(best_gain):
                        best_gain = gained
                        best_swap = (ci, cj)
            if not best_swap or not best_gain:
                break
            ci, cj = best_swap
            self.stats.swaps_applied += 1
            in_set = [c for c in in_set if c is not ci] + [cj] + best_gain
            gained_ids = {id(c) for c in best_gain}
            residual = [
                c
                for c in residual
                if c is not cj and id(c) not in gained_ids
            ] + [ci]
        return in_set, residual

    def _matcher_without(
        self, in_set: List[ChunkLocation], ci: ChunkLocation
    ) -> Optional[IncrementalStripeMatcher]:
        """Matcher for R − {Ci}; shared base for every Cj candidate."""
        matcher = IncrementalStripeMatcher(self._k)
        for member in in_set:
            if member is ci:
                continue
            self.stats.match_calls += 1
            if not matcher.try_add(member.stripe_id, self._helpers(member)):
                return None  # cannot happen for a feasible R; be safe
        return matcher

    def _swap_gain(
        self,
        base: IncrementalStripeMatcher,
        cj: ChunkLocation,
        residual: List[ChunkLocation],
    ) -> List[ChunkLocation]:
        """Compute A_{i,j}: chunks addable to R ∪ {Cj} − {Ci}."""
        matcher = base.clone()
        self.stats.match_calls += 1
        if not matcher.try_add(cj.stripe_id, self._helpers(cj)):
            return []
        gained: List[ChunkLocation] = []
        for cl in residual:
            if cl is cj:
                continue
            self.stats.match_calls += 1
            if matcher.try_add(cl.stripe_id, self._helpers(cl)):
                gained.append(cl)
        return gained

    # ------------------------------------------------------------------

    def _helpers(self, chunk: ChunkLocation) -> List[NodeId]:
        """Healthy candidate helper nodes for a chunk."""
        key = (chunk.stripe_id, chunk.chunk_index)
        cached = self._helpers_cache.get(key)
        if cached is None:
            if self.helper_fn is not None:
                cached = list(self.helper_fn(chunk))
            else:
                cached = self.cluster.helper_nodes(
                    chunk.stripe_id, exclude={self.stf_node}
                )
            self._helpers_cache[key] = cached
        return cached

    def _uniform_k(self, chunks: Sequence[ChunkLocation]) -> int:
        if self.fanin is not None:
            return self.fanin
        ks = {self.cluster.stripe(c.stripe_id).k for c in chunks}
        if len(ks) != 1:
            raise ValueError(
                f"Algorithm 1 requires a uniform code across the STF "
                f"chunks; found k values {sorted(ks)}"
            )
        return ks.pop()


def find_reconstruction_sets(
    cluster: StorageCluster,
    stf_node: NodeId,
    chunks: Optional[Sequence[ChunkLocation]] = None,
    optimize: bool = True,
    group_size: Optional[int] = None,
    seed: Optional[int] = None,
    fanin: Optional[int] = None,
    helper_fn=None,
) -> List[List[ChunkLocation]]:
    """Convenience wrapper around :class:`ReconstructionSetFinder`.

    Returns the reconstruction sets ``R_1 … R_d`` (unordered; Algorithm
    2 sorts them by size).
    """
    finder = ReconstructionSetFinder(
        cluster,
        stf_node,
        optimize=optimize,
        group_size=group_size,
        seed=seed,
        fanin=fanin,
        helper_fn=helper_fn,
    )
    return finder.find_all(chunks)


def helper_assignment(
    cluster: StorageCluster,
    stf_node: NodeId,
    reconstruction_set: Sequence[ChunkLocation],
    fanin: Optional[int] = None,
    helper_fn=None,
) -> Dict[int, List[NodeId]]:
    """Assign k (or k') distinct helpers per stripe of a (feasible) set.

    Returns stripe_id -> helper node list; raises if the set is not
    actually reconstructable in parallel (which would indicate a bug in
    Algorithm 1 or a cluster mutation since it ran).
    """
    if not reconstruction_set:
        return {}
    k = fanin or cluster.stripe(reconstruction_set[0].stripe_id).k
    matcher = IncrementalStripeMatcher(k)
    for chunk in reconstruction_set:
        if helper_fn is not None:
            helpers = list(helper_fn(chunk))
        else:
            helpers = cluster.helper_nodes(chunk.stripe_id, exclude={stf_node})
        if not matcher.try_add(chunk.stripe_id, helpers):
            raise ValueError(
                f"reconstruction set infeasible at chunk {chunk}; was the "
                "cluster mutated after Algorithm 1 ran?"
            )
    return matcher.assignment()
