"""Shared helpers for the figure benchmarks.

Each bench regenerates one paper figure, saves the rendered series to
``benchmarks/results/<fig>.txt``, and asserts the paper's qualitative
shape (who wins, rough factors, crossovers).  Absolute numbers differ
from the paper — our substrate is a simulator / scaled local testbed,
not the authors' EC2 deployment (see EXPERIMENTS.md).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def save_result():
    """Persist a rendered experiment so bench output survives capture.

    Writes both the human-readable text and a JSON document the report
    generator (:mod:`repro.bench.report`) consumes.
    """
    import json

    def _save(experiment) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        base = RESULTS_DIR / experiment.experiment_id
        base.with_suffix(".txt").write_text(experiment.render())
        base.with_suffix(".json").write_text(
            json.dumps(experiment.to_dict(), indent=2)
        )

    return _save


def run_once(benchmark, factory, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(factory, kwargs=kwargs, rounds=1, iterations=1)
