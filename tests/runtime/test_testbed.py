"""End-to-end tests of the emulated testbed."""

import pytest

from repro.cluster import StorageCluster
from repro.core.planner import (
    FastPRPlanner,
    MigrationOnlyPlanner,
    ReconstructionOnlyPlanner,
)
from repro.core.plan import RepairScenario
from repro.ec import make_codec
from repro.runtime.testbed import EmulatedTestbed, VerificationError

CHUNK = 64 * 1024


@pytest.fixture(scope="module")
def repaired_testbed(tmp_path_factory):
    """A small cluster with data loaded, shared across this module."""
    cluster = StorageCluster.random(
        num_nodes=10,
        num_stripes=12,
        n=5,
        k=3,
        num_hot_standby=2,
        seed=21,
        disk_bandwidth=200e6,
        network_bandwidth=400e6,
        chunk_size=CHUNK,
    )
    cluster.node(0).mark_soon_to_fail()
    codec = make_codec("rs(5,3)")
    testbed = EmulatedTestbed(
        cluster,
        codec,
        packet_size=16 * 1024,
        workdir=tmp_path_factory.mktemp("testbed"),
    )
    testbed.start()
    testbed.load_random_data(seed=1)
    yield cluster, testbed
    testbed.shutdown()


class TestEndToEnd:
    @pytest.mark.parametrize(
        "planner_cls",
        [FastPRPlanner, ReconstructionOnlyPlanner, MigrationOnlyPlanner],
    )
    def test_scattered_repair_verifies(self, repaired_testbed, planner_cls):
        cluster, testbed = repaired_testbed
        plan = planner_cls().plan(cluster, 0)
        result = testbed.execute(plan)
        testbed.verify_plan(plan)
        assert result.chunks_repaired == cluster.load_of(0)
        assert result.total_time > 0
        assert len(result.round_times) == plan.num_rounds

    def test_hot_standby_repair_verifies(self, repaired_testbed):
        cluster, testbed = repaired_testbed
        plan = FastPRPlanner(scenario=RepairScenario.HOT_STANDBY, seed=0).plan(
            cluster, 0
        )
        testbed.execute(plan)
        testbed.verify_plan(plan)

    def test_packet_size_override(self, repaired_testbed):
        cluster, testbed = repaired_testbed
        plan = MigrationOnlyPlanner().plan(cluster, 0)
        result = testbed.execute(plan, packet_size=CHUNK)
        testbed.verify_plan(plan)
        assert result.chunks_repaired == plan.total_chunks

    def test_traffic_amplification_of_reconstruction(self, repaired_testbed):
        cluster, testbed = repaired_testbed
        plan = ReconstructionOnlyPlanner(seed=1).plan(cluster, 0)
        result = testbed.execute(plan)
        expected = plan.reconstructed_chunks * 3 * CHUNK
        assert result.bytes_transferred == expected

    def test_verify_detects_corruption(self, repaired_testbed):
        cluster, testbed = repaired_testbed
        plan = MigrationOnlyPlanner().plan(cluster, 0)
        testbed.execute(plan)
        action = next(plan.actions())
        store = testbed.stores[action.destination]
        store.put(action.stripe_id, b"\x00" * CHUNK)
        with pytest.raises(VerificationError):
            testbed.verify_plan(plan)
        # Restore for other tests.
        testbed.execute(plan)
        testbed.verify_plan(plan)


class TestLifecycle:
    def test_execute_requires_start(self, tmp_path):
        cluster = StorageCluster.random(
            6, 4, 4, 2, seed=1, chunk_size=1024
        )
        cluster.node(0).mark_soon_to_fail()
        testbed = EmulatedTestbed(
            cluster, make_codec("rs(4,2)"), workdir=tmp_path
        )
        plan = MigrationOnlyPlanner().plan(cluster, 0)
        with pytest.raises(RuntimeError, match="start"):
            testbed.execute(plan)

    def test_context_manager(self, tmp_path):
        cluster = StorageCluster.random(
            6, 4, 4, 2, seed=2, chunk_size=1024, disk_bandwidth=1e9,
            network_bandwidth=1e9,
        )
        cluster.node(0).mark_soon_to_fail()
        with EmulatedTestbed(
            cluster, make_codec("rs(4,2)"), workdir=tmp_path
        ) as testbed:
            testbed.load_random_data(seed=3)
            plan = MigrationOnlyPlanner().plan(cluster, 0)
            testbed.execute(plan)
            testbed.verify_plan(plan)

    def test_pipeline_depth_toggle(self, tmp_path):
        cluster = StorageCluster.random(
            6, 4, 4, 2, seed=3, chunk_size=4096, disk_bandwidth=1e9,
            network_bandwidth=1e9,
        )
        cluster.node(0).mark_soon_to_fail()
        with EmulatedTestbed(
            cluster,
            make_codec("rs(4,2)"),
            workdir=tmp_path,
            pipeline_depth=0,
        ) as testbed:
            assert all(a.pipeline_depth == 0 for a in testbed.agents.values())
            testbed.load_random_data(seed=4)
            plan = MigrationOnlyPlanner().plan(cluster, 0)
            testbed.execute(plan)
            testbed.verify_plan(plan)
