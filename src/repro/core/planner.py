"""Repair planners: FastPR and the paper's two baselines.

* :class:`FastPRPlanner` — Algorithm 1 + Algorithm 2: couples
  migration and reconstruction per round.
* :class:`ReconstructionOnlyPlanner` — the conventional reactive
  repair: Algorithm 1's sets, one per round, no migration.
* :class:`MigrationOnlyPlanner` — relocate every chunk off the STF
  node, serialized by its bandwidth.

All planners emit a :class:`~repro.core.plan.RepairPlan` that the
simulator (:mod:`repro.sim`) or the emulated testbed runtime
(:mod:`repro.runtime`) can execute.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..cluster.chunk import ChunkLocation, NodeId
from ..cluster.cluster import StorageCluster
from .analysis import AnalyticalModel, BandwidthProfile
from .placement import (
    HotStandbyPlacer,
    assign_scattered_destinations,
)
from .plan import (
    ChunkRepairAction,
    RepairMethod,
    RepairPlan,
    RepairRound,
    RepairScenario,
)
from .reconstruction_sets import (
    ReconstructionSetFinder,
    helper_assignment,
)
from .scheduling import (
    RoundComposition,
    schedule_migration_only,
    schedule_reconstruction_only,
    schedule_repair_rounds,
)


def profile_from_cluster(cluster: StorageCluster) -> BandwidthProfile:
    """Build a :class:`BandwidthProfile` from a cluster's defaults."""
    return BandwidthProfile(
        chunk_size=cluster.chunk_size,
        disk_bandwidth=cluster.disk_bandwidth,
        network_bandwidth=cluster.network_bandwidth,
    )


def model_for(
    cluster: StorageCluster,
    scenario: RepairScenario,
    k: int,
    profile: Optional[BandwidthProfile] = None,
    k_prime: Optional[int] = None,
) -> AnalyticalModel:
    """Analytical model matching a cluster + scenario configuration."""
    if profile is None:
        profile = profile_from_cluster(cluster)
    hot_standby = None
    if scenario is RepairScenario.HOT_STANDBY:
        hot_standby = cluster.num_hot_standby
        if hot_standby < 1:
            raise ValueError(
                "hot-standby repair requires at least one standby node"
            )
    return AnalyticalModel(
        num_nodes=cluster.num_storage_nodes,
        k=k,
        profile=profile,
        hot_standby=hot_standby,
        k_prime=k_prime,
    )


class RepairPlanner(ABC):
    """Common interface: produce a :class:`RepairPlan` for an STF node."""

    #: short name used in experiment tables
    name: str = "base"

    def __init__(
        self,
        scenario: RepairScenario = RepairScenario.SCATTERED,
        profile: Optional[BandwidthProfile] = None,
        seed: Optional[int] = None,
        pipelined: bool = False,
    ):
        self.scenario = scenario
        self.profile = profile
        self.seed = seed
        #: reconstruct via helper chains (repair pipelining) instead of
        #: fan-in at the destination
        self.pipelined = pipelined

    @abstractmethod
    def compose_rounds(
        self,
        cluster: StorageCluster,
        stf_node: NodeId,
        chunks: List[ChunkLocation],
    ) -> List[RoundComposition]:
        """Return the per-round chunk partition for this strategy."""

    def plan(
        self,
        cluster: StorageCluster,
        stf_node: NodeId,
        chunks: Optional[Sequence[ChunkLocation]] = None,
    ) -> RepairPlan:
        """Build the full repair plan (rounds, helpers, destinations)."""
        if chunks is None:
            chunks = cluster.chunks_on_node(stf_node)
        chunks = list(chunks)
        plan = RepairPlan(stf_node=stf_node, scenario=self.scenario)
        if not chunks:
            return plan
        compositions = self.compose_rounds(cluster, stf_node, chunks)
        standby_placer = None
        if self.scenario is RepairScenario.HOT_STANDBY:
            standby_placer = HotStandbyPlacer(cluster)
        for index, comp in enumerate(compositions):
            plan.rounds.append(
                self._build_round(
                    cluster, stf_node, index, comp, standby_placer
                )
            )
        return plan

    def _build_round(
        self,
        cluster: StorageCluster,
        stf_node: NodeId,
        index: int,
        comp: RoundComposition,
        standby_placer: Optional[HotStandbyPlacer],
    ) -> RepairRound:
        all_chunks = comp.reconstruction + comp.migration
        if standby_placer is not None:
            destinations = standby_placer.assign(all_chunks)
        else:
            destinations = assign_scattered_destinations(
                cluster, stf_node, all_chunks
            )
        helpers: Dict[int, List[NodeId]] = {}
        if comp.reconstruction:
            helpers = helper_assignment(cluster, stf_node, comp.reconstruction)
        round_ = RepairRound(index=index)
        for chunk in comp.reconstruction:
            round_.reconstructions.append(
                ChunkRepairAction(
                    stripe_id=chunk.stripe_id,
                    chunk_index=chunk.chunk_index,
                    method=RepairMethod.RECONSTRUCTION,
                    sources=tuple(helpers[chunk.stripe_id]),
                    destination=destinations[(chunk.stripe_id, chunk.chunk_index)],
                    pipelined=self.pipelined,
                )
            )
        for chunk in comp.migration:
            round_.migrations.append(
                ChunkRepairAction(
                    stripe_id=chunk.stripe_id,
                    chunk_index=chunk.chunk_index,
                    method=RepairMethod.MIGRATION,
                    sources=(stf_node,),
                    destination=destinations[(chunk.stripe_id, chunk.chunk_index)],
                )
            )
        return round_

    # Shared helpers -----------------------------------------------------

    def _uniform_k(
        self, cluster: StorageCluster, chunks: Sequence[ChunkLocation]
    ) -> int:
        ks = {cluster.stripe(c.stripe_id).k for c in chunks}
        if len(ks) != 1:
            raise ValueError(
                f"planner requires a uniform code over the STF chunks; "
                f"found k values {sorted(ks)}"
            )
        return ks.pop()


class FastPRPlanner(RepairPlanner):
    """The paper's contribution: coupled migration + reconstruction.

    Args:
        scenario: scattered or hot-standby repair.
        profile: bandwidth profile for the c_m computation; defaults to
            the cluster's configured bandwidths.
        optimize: enable Algorithm 1's swap optimization.
        group_size: run Algorithm 1 per chunk group (Section IV-D).
        seed: randomization for Algorithm 1 ordering and the R'_x split.
        k_prime: repair fan-in override for repair-efficient codes.
        rounding: integerization of c_m ("nearest" or "floor"); see
            :func:`repro.core.scheduling.migration_quota`.
    """

    name = "fastpr"

    def __init__(
        self,
        scenario: RepairScenario = RepairScenario.SCATTERED,
        profile: Optional[BandwidthProfile] = None,
        optimize: bool = True,
        group_size: Optional[int] = None,
        seed: Optional[int] = None,
        k_prime: Optional[int] = None,
        rounding: str = "nearest",
        pipelined: bool = False,
    ):
        super().__init__(scenario, profile, seed, pipelined=pipelined)
        self.optimize = optimize
        self.group_size = group_size
        self.k_prime = k_prime
        self.rounding = rounding
        #: stats of the last Algorithm 1 run (Experiment B.5)
        self.last_stats = None

    def compose_rounds(self, cluster, stf_node, chunks):
        finder = ReconstructionSetFinder(
            cluster,
            stf_node,
            optimize=self.optimize,
            group_size=self.group_size,
            seed=self.seed,
        )
        sets = finder.find_all(chunks)
        self.last_stats = finder.stats
        k = self._uniform_k(cluster, chunks)
        model = model_for(
            cluster, self.scenario, k, profile=self.profile, k_prime=self.k_prime
        )
        return schedule_repair_rounds(
            sets, model, seed=self.seed, rounding=self.rounding
        )


class ReconstructionOnlyPlanner(RepairPlanner):
    """Conventional reactive repair: reconstruction sets, no migration."""

    name = "reconstruction"

    def __init__(
        self,
        scenario: RepairScenario = RepairScenario.SCATTERED,
        profile: Optional[BandwidthProfile] = None,
        optimize: bool = True,
        group_size: Optional[int] = None,
        seed: Optional[int] = None,
        pipelined: bool = False,
    ):
        super().__init__(scenario, profile, seed, pipelined=pipelined)
        self.optimize = optimize
        self.group_size = group_size

    def compose_rounds(self, cluster, stf_node, chunks):
        finder = ReconstructionSetFinder(
            cluster,
            stf_node,
            optimize=self.optimize,
            group_size=self.group_size,
            seed=self.seed,
        )
        return schedule_reconstruction_only(finder.find_all(chunks))


class MigrationOnlyPlanner(RepairPlanner):
    """Relocate every chunk off the STF node (no decoding)."""

    name = "migration"

    def compose_rounds(self, cluster, stf_node, chunks):
        return schedule_migration_only(chunks)


def stagger_concurrent_plans(plans: List[RepairPlan]) -> List[RepairPlan]:
    """Align concurrent plans so no helper is double-booked per round.

    Each plan was built assuming it owns its helpers, but concurrent
    STF repairs share the surviving fleet: if plan A's round 2 and plan
    B's round 2 both read helper 7, the two streams halve each other's
    bandwidth and both rounds blow their cost-model deadline.  This
    pass greedily re-slots rounds onto a shared timeline — a round
    moves to the earliest slot (not before its predecessor within its
    own plan) whose already-booked source nodes it does not intersect —
    and pads the gaps with empty rounds, so executing the returned
    plans in lockstep (round index r together) never co-schedules two
    reads of one helper.  Single-plan input comes back unchanged.
    """
    slot_sources: List[Set[NodeId]] = []
    staggered: List[RepairPlan] = []
    for plan in plans:
        placements: Dict[int, RepairRound] = {}
        cursor = 0
        for round_ in plan.rounds:
            sources: Set[NodeId] = set()
            for action in round_.actions():
                sources.update(action.sources)
            slot = cursor
            while True:
                while slot >= len(slot_sources):
                    slot_sources.append(set())
                if not (slot_sources[slot] & sources):
                    break
                slot += 1
            slot_sources[slot].update(sources)
            placements[slot] = round_
            cursor = slot + 1
        rounds: List[RepairRound] = []
        for slot in range(max(placements) + 1 if placements else 0):
            placed = placements.get(slot)
            rounds.append(
                RepairRound(
                    index=slot,
                    reconstructions=(
                        list(placed.reconstructions) if placed else []
                    ),
                    migrations=list(placed.migrations) if placed else [],
                )
            )
        staggered.append(
            RepairPlan(
                stf_node=plan.stf_node, scenario=plan.scenario, rounds=rounds
            )
        )
    return staggered


def plan_predictive_repair(
    cluster: StorageCluster,
    scenario: RepairScenario = RepairScenario.SCATTERED,
    **planner_kwargs,
) -> List[RepairPlan]:
    """Plan repair for the cluster's currently flagged STF nodes.

    Implements the paper's single-STF assumption: with exactly one STF
    node, FastPR runs; with several (rare; the paper cites 98%
    single-node events), each node falls back to the conventional
    reconstruction-only reactive repair.  Concurrent plans are
    staggered (:func:`stagger_concurrent_plans`) so no two of them
    read the same helper in the same round.
    """
    stf_nodes = cluster.stf_nodes()
    if not stf_nodes:
        return []
    if len(stf_nodes) == 1:
        planner = FastPRPlanner(scenario=scenario, **planner_kwargs)
        return [planner.plan(cluster, stf_nodes[0])]
    fallback = ReconstructionOnlyPlanner(scenario=scenario)
    return stagger_concurrent_plans(
        [fallback.plan(cluster, node) for node in stf_nodes]
    )


class UnrecoverableChunkError(ValueError):
    """A chunk cannot be repaired with the surviving nodes."""


def heal_action(
    cluster: StorageCluster,
    stf_node: NodeId,
    action: ChunkRepairAction,
    dead: Iterable[NodeId],
    scenario: RepairScenario = RepairScenario.SCATTERED,
) -> ChunkRepairAction:
    """Rewrite a repair action so it avoids permanently dead nodes.

    The paper's mid-repair failure handling (Section V): if the STF
    node dies, its unmigrated chunks fall back to pure reconstruction
    from the stripe's surviving chunks; if a helper dies, the
    reconstruction is re-solved with surviving sources; if a
    destination dies, a fresh destination is chosen.  Degraded mode
    favors completing the repair over round-level parallelism
    invariants (a healed action may reuse a helper another action in
    the round also reads from).

    Args:
        cluster: metadata as of plan time (healed helpers must actually
            store a chunk of the stripe).
        stf_node: the plan's STF node.
        action: the action to heal.
        dead: nodes known to be permanently gone.
        scenario: governs replacement-destination choice.

    Returns:
        The action unchanged if no dead node is involved, else a healed
        copy (``pipelined`` is cleared — degraded repairs use plain
        fan-in, whose coefficients any helper subset supports).

    Raises:
        UnrecoverableChunkError: not enough surviving helpers or no
            eligible destination remains.
    """
    dead_set: Set[NodeId] = set(dead)
    involved = set(action.sources) | {action.destination}
    if not involved & dead_set:
        return action
    stripe = cluster.stripe(action.stripe_id)
    destination = action.destination
    if destination in dead_set:
        destination = _replacement_destination(
            cluster, stripe, dead_set, stf_node, scenario
        )
    sources = action.sources
    method = action.method
    pipelined = action.pipelined
    if dead_set & set(action.sources):
        exclude = dead_set | {stf_node, destination}
        if method is RepairMethod.MIGRATION:
            # The STF node itself died: hybrid -> pure reconstruction.
            method = RepairMethod.RECONSTRUCTION
            k = stripe.k
            candidates = cluster.helper_nodes(action.stripe_id, exclude=exclude)
            if len(candidates) < k:
                raise UnrecoverableChunkError(
                    f"chunk ({action.stripe_id}, {action.chunk_index}): only "
                    f"{len(candidates)} surviving helpers, need {k}"
                )
            sources = tuple(candidates[:k])
        else:
            survivors = [s for s in action.sources if s not in dead_set]
            candidates = [
                h
                for h in cluster.helper_nodes(action.stripe_id, exclude=exclude)
                if h not in survivors
            ]
            need = len(action.sources) - len(survivors)
            if len(candidates) < need:
                raise UnrecoverableChunkError(
                    f"chunk ({action.stripe_id}, {action.chunk_index}): "
                    f"cannot replace {need} dead helpers "
                    f"({len(candidates)} candidates)"
                )
            sources = tuple(survivors + candidates[:need])
        pipelined = False
    return replace(
        action,
        method=method,
        sources=sources,
        destination=destination,
        pipelined=pipelined,
    )


def _replacement_destination(
    cluster: StorageCluster,
    stripe,
    dead: Set[NodeId],
    stf_node: NodeId,
    scenario: RepairScenario,
) -> NodeId:
    """First eligible surviving destination for a healed action."""
    from ..cluster.node import NodeRole

    for node_id in sorted(cluster.nodes):
        if node_id in dead or node_id == stf_node:
            continue
        node = cluster.node(node_id)
        if scenario is RepairScenario.HOT_STANDBY:
            if node.is_standby:
                return node_id
            continue
        if (
            node.role is NodeRole.STORAGE
            and not node.is_stf
            and not stripe.stores_on(node_id)
        ):
            return node_id
    raise UnrecoverableChunkError(
        f"no surviving destination for a chunk of stripe {stripe.stripe_id}"
    )


def apply_plan(cluster: StorageCluster, plan: RepairPlan) -> None:
    """Commit a plan's placements to the cluster metadata.

    After this, the STF node stores no chunks and can be decommissioned
    (the runtime counterpart is the DataNodes' heartbeat reports that
    update the NameNode, Section V).
    """
    for action in plan.actions():
        cluster.relocate_chunk(
            action.stripe_id, action.chunk_index, action.destination
        )
