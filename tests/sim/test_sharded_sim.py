"""Round-granularity multi-coordinator mirror in the simulator."""

import random

import pytest

from repro.cluster.cluster import StorageCluster
from repro.cluster.topology import RackAwarePlacement, RackTopology
from repro.core.planner import FastPRPlanner
from repro.runtime.faults import DomainCrashFault, FaultPlan
from repro.sim import (
    ShardedRepairResult,
    simulate_repair,
    simulate_sharded_repair,
)

CHUNK = 1 << 20


def make_cluster(num_stripes=40, seed=7):
    cluster = StorageCluster(
        num_nodes=15, num_hot_standby=3, chunk_size=CHUNK
    )
    topology = RackTopology.uniform(sorted(cluster.nodes), 5)
    placer = RackAwarePlacement(topology, max_per_rack=1, seed=seed)
    for _ in range(num_stripes):
        cluster.add_stripe(5, 3, placer.choose(cluster, 5))
    cluster.node(0).mark_soon_to_fail()
    return cluster, topology


def make_plan(cluster, seed=0):
    return FastPRPlanner(seed=seed).plan(cluster, 0)


class TestShardedSimulation:
    def test_repairs_every_chunk(self):
        cluster, _ = make_cluster()
        plan = make_plan(cluster)
        single = simulate_repair(cluster, plan)
        sharded = simulate_sharded_repair(cluster, plan, num_shards=2)
        assert isinstance(sharded, ShardedRepairResult)
        assert sharded.chunks_repaired == single.chunks_repaired
        assert sharded.bytes_written == single.bytes_written
        assert sharded.takeovers == 0
        assert sum(len(r) for r in sharded.per_shard_rounds.values()) == len(
            sharded.round_times
        )

    def test_one_shard_matches_single_coordinator(self):
        cluster, _ = make_cluster()
        plan = make_plan(cluster)
        single = simulate_repair(cluster, plan)
        sharded = simulate_sharded_repair(cluster, plan, num_shards=1)
        assert sharded.total_time == pytest.approx(single.total_time)
        assert sharded.round_times == pytest.approx(single.round_times)

    def test_contention_never_beats_the_devices(self):
        """Sharding can reorder work but moves the same bytes."""
        cluster, _ = make_cluster()
        plan = make_plan(cluster)
        single = simulate_repair(cluster, plan)
        for shards in (2, 3):
            result = simulate_sharded_repair(cluster, plan, num_shards=shards)
            assert result.bytes_transferred == single.bytes_transferred
            assert result.bytes_read == single.bytes_read

    def test_rejects_zero_shards(self):
        cluster, _ = make_cluster()
        with pytest.raises(ValueError):
            simulate_sharded_repair(cluster, make_plan(cluster), num_shards=0)


class TestShardedFaults:
    def fault(self, coordinators=(1,), at_time=0.0):
        return FaultPlan(
            domain_crashes=[
                DomainCrashFault(
                    kind="rack",
                    index=1,
                    at_time=at_time,
                    coordinators=coordinators,
                )
            ]
        )

    def test_rack_kill_pays_one_takeover(self):
        cluster, topology = make_cluster()
        plan = make_plan(cluster)
        clean = simulate_sharded_repair(cluster, plan, num_shards=2)
        faulted = simulate_sharded_repair(
            cluster,
            plan,
            num_shards=2,
            faults=self.fault(),
            topology=topology,
            recovery_delay=2.0,
        )
        assert faulted.takeovers == 1
        assert faulted.coordinator_restarts == 1
        assert faulted.replans >= 1
        assert set(faulted.dead_nodes) == set(topology.nodes_in_rack(1))
        assert faulted.total_time > clean.total_time
        assert faulted.chunks_repaired == plan.total_chunks

    def test_pre_resolved_plan_works_without_topology(self):
        cluster, topology = make_cluster()
        plan = make_plan(cluster)
        resolved = self.fault().resolve_domains(topology)
        result = simulate_sharded_repair(
            cluster, plan, num_shards=2, faults=resolved, recovery_delay=1.0
        )
        assert result.takeovers == 1
        assert set(result.dead_nodes) == set(topology.nodes_in_rack(1))

    def test_takeover_cost_scales_with_recovery_delay(self):
        cluster, topology = make_cluster()
        plan = make_plan(cluster)
        cheap = simulate_sharded_repair(
            cluster, plan, num_shards=2, faults=self.fault(),
            topology=topology, recovery_delay=0.5,
        )
        dear = simulate_sharded_repair(
            cluster, plan, num_shards=2, faults=self.fault(),
            topology=topology, recovery_delay=5.0,
        )
        assert dear.total_time >= cheap.total_time + 4.0

    def test_kill_of_out_of_range_shard_is_ignored(self):
        cluster, topology = make_cluster()
        plan = make_plan(cluster)
        result = simulate_sharded_repair(
            cluster,
            plan,
            num_shards=2,
            faults=self.fault(coordinators=(7,)),
            topology=topology,
            recovery_delay=2.0,
        )
        assert result.takeovers == 0
