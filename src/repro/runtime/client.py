"""Client-side reads, including degraded reads.

A storage client reads chunks by (stripe, chunk index).  While a node
is failed — or an STF node has been shut down before its predictive
repair finished — reads of its chunks fall back to a *degraded read*:
fetch ``k`` surviving chunks of the stripe and decode the requested one
on the fly.  This is the read path whose latency amplification
motivates fast repair in the first place (the paper's introduction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cluster.chunk import StripeId
from ..cluster.node import NodeState
from ..ec.codec import DecodeError, ErasureCodec


@dataclass
class ClientStats:
    """Read-path accounting."""

    direct_reads: int = 0
    degraded_reads: int = 0
    bytes_fetched: int = 0


class StorageClient:
    """Reads chunks from an :class:`~repro.runtime.testbed.EmulatedTestbed`.

    Args:
        testbed: supplies stores, cluster metadata and the codec.
        throttled: charge reads against the nodes' disk limiters
            (realistic timing); disable for fast tests.
    """

    def __init__(self, testbed, throttled: bool = True):
        self.testbed = testbed
        self.throttled = throttled
        self.stats = ClientStats()

    @property
    def _cluster(self):
        return self.testbed.cluster

    @property
    def _codec(self) -> ErasureCodec:
        return self.testbed.codec

    def read(
        self, stripe_id: StripeId, chunk_index: int, allow_degraded: bool = True
    ) -> bytes:
        """Read one chunk, decoding from survivors if its node is down.

        Raises:
            DecodeError: if the chunk is unavailable and a degraded
                read is disallowed or impossible.
        """
        stripe = self._cluster.stripe(stripe_id)
        node_id = stripe.node_of(chunk_index)
        node = self._cluster.node(node_id)
        store = self.testbed.stores[node_id]
        if node.state is not NodeState.FAILED and store.has(stripe_id):
            data = store.read(stripe_id, throttled=self.throttled)
            self.stats.direct_reads += 1
            self.stats.bytes_fetched += len(data)
            return data
        if not allow_degraded:
            raise DecodeError(
                f"chunk ({stripe_id}, {chunk_index}) unavailable and "
                "degraded reads are disabled"
            )
        return self._degraded_read(stripe, chunk_index)

    def _degraded_read(self, stripe, chunk_index: int) -> bytes:
        """Fetch k surviving chunks and decode the requested one."""
        available = {}
        for index, node_id in enumerate(stripe.placement):
            if index == chunk_index:
                continue
            node = self._cluster.node(node_id)
            store = self.testbed.stores[node_id]
            if node.state is NodeState.FAILED or not store.has(stripe.stripe_id):
                continue
            available[index] = store.read(
                stripe.stripe_id, throttled=self.throttled
            )
            if len(available) == self._codec.k:
                break
        if len(available) < self._codec.k:
            raise DecodeError(
                f"stripe {stripe.stripe_id}: only {len(available)} chunks "
                f"readable, need {self._codec.k}"
            )
        self.stats.degraded_reads += 1
        self.stats.bytes_fetched += sum(len(c) for c in available.values())
        return self._codec.decode(available, [chunk_index])[chunk_index]

    def read_stripe_data(self, stripe_id: StripeId) -> bytes:
        """Read a stripe's original data payload (first k chunks joined).

        Only meaningful for systematic codecs (RS, LRC), whose first
        ``k`` chunks are the data.
        """
        return b"".join(
            self.read(stripe_id, index) for index in range(self._codec.k)
        )
