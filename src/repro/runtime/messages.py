"""Wire protocol of the coordinator/agent runtime (Section V).

The coordinator instructs agents with command messages; agents move
chunk data as packet messages and acknowledge completed repairs.  All
messages are small dataclasses delivered over the in-process transport;
only :class:`DataPacket` payloads are bandwidth-throttled.

Fault tolerance additions:

* every command, packet and ACK carries an ``attempt`` number so a
  retried action never mixes packets from a superseded attempt into a
  fresh assembly;
* :class:`RepairAck` doubles as a NACK via ``status`` / ``detail``, so
  agent-side failures surface at the coordinator instead of dying in a
  worker thread;
* :class:`DataPacket` carries a CRC so corrupted payloads are dropped
  at the receiver (the sender's synchronous round trip then stalls and
  the coordinator retries the action);
* :class:`Heartbeat` / :class:`Ping` / :class:`Pong` let the
  coordinator distinguish a slow node from a dead one.

Crash-recovery additions (split-brain fencing):

* every command, packet and ACK also carries the coordinator's
  ``epoch``.  Agents persist the highest epoch they have seen and NACK
  any *mutating* command from an older epoch, so a zombie pre-crash
  coordinator is fenced out the moment its successor takes over;
* :class:`InventoryQuery` / :class:`InventoryReply` let a recovering
  coordinator ask every agent which chunks it durably stores (atomic
  ``.part`` promotion means a chunk either exists fully or not at all),
  to reconcile the journal against reality before resuming.
"""

from __future__ import annotations

from dataclasses import MISSING, dataclass, field, fields as dataclass_fields
from typing import Callable, Dict, Optional, Tuple, Type

from ..cluster.chunk import NodeId, StripeId
from ..core.serde import Schema, SerdeError

#: identifies one chunk-repair action: (stripe, chunk index)
ActionKey = Tuple[StripeId, int]

#: RepairAck.status value for a successful repair
ACK_OK = "ok"
#: RepairAck.status value for an agent-side failure (a NACK)
ACK_FAILED = "failed"

# ----------------------------------------------------------------------
# wire registry: every message rides on repro.core.serde.Schema
# ----------------------------------------------------------------------

#: wire name -> message class (every serializable runtime message)
WIRE_MESSAGES: Dict[str, type] = {}
#: binary type code -> message class (repro.net frame header)
WIRE_CODES: Dict[int, type] = {}


def wire_message(
    name: str,
    code: int,
    coerce: Optional[Callable[[dict], dict]] = None,
    version: int = 1,
):
    """Class decorator: register a message dataclass on the wire protocol.

    Builds a :class:`~repro.core.serde.Schema` from the dataclass
    fields — version-stamped ``to_dict`` output, unknown-key rejection
    on ``from_dict`` — so the TCP codec, tests and any journaled
    message all share one canonical encoding instead of ad-hoc dict
    dumps.  A ``payload`` field (raw chunk bytes) is *excluded* from
    the dict form: the binary framing in :mod:`repro.net.wire` carries
    it verbatim after the JSON control fields, avoiding base64 blow-up.

    Args:
        name: stable wire name (used in envelopes and errors).
        code: stable ``u16`` type code for the binary frame header.
        coerce: optional hook rewriting the loaded body before the
            constructor runs (JSON stringifies dict keys and turns
            tuples into lists; the hook undoes that).
        version: schema version stamped on every document.
    """

    def register(cls: Type) -> Type:
        if name in WIRE_MESSAGES:
            raise ValueError(f"duplicate wire message name {name!r}")
        if code in WIRE_CODES:
            raise ValueError(f"duplicate wire message code {code}")
        all_fields = dataclass_fields(cls)
        payload_field = next(
            (f.name for f in all_fields if f.name == "payload"), None
        )
        control = tuple(
            f.name for f in all_fields if f.name != payload_field
        )
        required = tuple(
            f.name
            for f in all_fields
            if f.name != payload_field
            and f.default is MISSING
            and f.default_factory is MISSING
        )
        schema = Schema(
            kind=f"{name} message",
            version=version,
            fields=control,
            required=required,
        )

        def to_dict(self) -> dict:
            """Version-stamped control fields (payload bytes excluded)."""
            return schema.dump({f: getattr(self, f) for f in control})

        def from_dict(cls_, document: dict, payload: bytes = b""):
            """Inverse of ``to_dict``; unknown keys raise.

            ``payload`` re-attaches the raw bytes the binary framing
            carried outside the JSON control fields.
            """
            body = schema.load(document)
            if coerce is not None:
                body = coerce(body)
            if payload_field is not None:
                body[payload_field] = payload
            elif payload:
                raise SerdeError(
                    f"{name} message carries no payload, got "
                    f"{len(payload)} bytes"
                )
            return cls_(**body)

        cls.WIRE_NAME = name
        cls.WIRE_CODE = code
        cls.WIRE_SCHEMA = schema
        cls.WIRE_PAYLOAD_FIELD = payload_field
        cls.to_dict = to_dict
        cls.from_dict = classmethod(from_dict)
        WIRE_MESSAGES[name] = cls
        WIRE_CODES[code] = cls
        return cls

    return register


def _coerce_receive(body: dict) -> dict:
    if "sources" in body:
        body["sources"] = {
            int(node): coeff for node, coeff in body["sources"].items()
        }
    return body


def _coerce_inventory_reply(body: dict) -> dict:
    if "stripes" in body:
        body["stripes"] = tuple(body["stripes"])
    return body


@wire_message("receive", 1, coerce=_coerce_receive)
@dataclass(frozen=True)
class ReceiveCommand:
    """Tell the destination agent to expect and assemble a chunk.

    The destination accumulates ``coeff * packet`` from every source —
    coefficient 1 from a single source is a migration; ``k`` erasure-
    coding coefficients implement streaming reconstruction decode.

    Attributes:
        stripe_id / chunk_index: the chunk being repaired.
        chunk_size: total bytes of the chunk.
        packet_size: packet granularity of the incoming transfers.
        sources: source node -> GF(2^8) coefficient.
        attempt: retry generation; packets from other attempts are
            ignored by the assembly.
        epoch: issuing coordinator's epoch (fencing + staleness).
        reply_to: endpoint id of the issuing coordinator; ACKs, NACKs
            and epoch fencing are scoped to this endpoint so several
            shard coordinators can drive the same agent concurrently.
    """

    stripe_id: StripeId
    chunk_index: int
    chunk_size: int
    packet_size: int
    sources: Dict[NodeId, int] = field(default_factory=dict)
    attempt: int = 0
    epoch: int = 0
    reply_to: NodeId = -1
    #: >0: expect :class:`SlicePacket` streams carved into this many
    #: slices (sliced chained reconstruction); 0 keeps the legacy
    #: packet-granular protocol.
    num_slices: int = 0

    @property
    def key(self) -> ActionKey:
        return (self.stripe_id, self.chunk_index)


@wire_message("send", 2)
@dataclass(frozen=True)
class SendCommand:
    """Tell an agent to stream its locally stored chunk of a stripe.

    For migration the sender is the STF node sending the repaired
    chunk itself; for reconstruction the sender is a helper sending its
    own chunk of the same stripe.
    """

    stripe_id: StripeId
    #: the repaired chunk's index (names the assembly at the destination)
    chunk_index: int
    destination: NodeId
    packet_size: int
    attempt: int = 0
    epoch: int = 0
    #: issuing coordinator endpoint (fencing + reply routing)
    reply_to: NodeId = -1

    @property
    def key(self) -> ActionKey:
        return (self.stripe_id, self.chunk_index)


@wire_message("relay", 3)
@dataclass(frozen=True)
class RelayCommand:
    """Tell a helper to act as one stage of a repair pipeline.

    The helper scales its own chunk of the stripe by ``coeff`` and
    forwards it packet-by-packet to ``destination`` (the next pipeline
    stage, or the repairing node).  Unless ``first`` is set, it waits
    for the upstream stage's partial-sum packet for each offset and
    XORs its own contribution into it before forwarding — the repair
    pipelining of Li et al. (ATC'17).
    """

    stripe_id: StripeId
    #: the repaired chunk's index (names the stream across hops)
    chunk_index: int
    destination: NodeId
    packet_size: int
    chunk_size: int
    coeff: int
    first: bool
    #: the upstream node (unset when first)
    upstream: NodeId = -1
    attempt: int = 0
    epoch: int = 0
    #: issuing coordinator endpoint (fencing + reply routing)
    reply_to: NodeId = -1
    #: >0: carve the chunk into this many slices and emit
    #: :class:`SlicePacket` frames tagged with slice index + chain
    #: position; 0 keeps the legacy packet-granular relay.
    num_slices: int = 0
    #: this helper's position in the chain (0 = first; -1 = unsliced)
    chain_pos: int = -1

    @property
    def key(self) -> ActionKey:
        return (self.stripe_id, self.chunk_index)


@wire_message("data", 4)
@dataclass(frozen=True)
class DataPacket:
    """One packet of chunk data in flight.

    ``checksum`` is the CRC32 of the payload as the sender produced it;
    a receiver drops any packet whose payload no longer matches (fault
    injection can corrupt payloads in flight).
    """

    stripe_id: StripeId
    chunk_index: int
    source: NodeId
    offset: int
    payload: bytes
    attempt: int = 0
    epoch: int = 0
    checksum: Optional[int] = None

    @property
    def key(self) -> ActionKey:
        return (self.stripe_id, self.chunk_index)


@wire_message("slice", 13)
@dataclass(frozen=True)
class SlicePacket(DataPacket):
    """One slice-granular partial sum flowing through a repair chain.

    A :class:`DataPacket` specialization (it inherits NIC throttling,
    link-fault injection and CRC verification on every transport) that
    additionally names which of the chunk's ``num_slices`` slices it
    carries and which chain position emitted it.  ``offset`` remains
    the byte offset of the slice within the chunk, so legacy assembly
    bookkeeping (dedupe, completion tracking) applies unchanged.
    """

    #: index of the slice within the chunk, ``0 <= slice_index < num_slices``
    slice_index: int = 0
    #: total slices the chunk was carved into
    num_slices: int = 0
    #: chain position of the emitting helper (0 = chain head)
    chain_pos: int = -1


@wire_message("slice_report", 14)
@dataclass(frozen=True)
class SliceReport:
    """Destination -> coordinator: one slice fully assembled.

    Streams per-slice completion progress so the coordinator can track
    partial reconstructions in its journal and observe effective chain
    throughput (``elapsed`` is seconds since assembly start), feeding
    the bandwidth-aware re-sort of later chains.
    """

    stripe_id: StripeId
    chunk_index: int
    node_id: NodeId
    slice_index: int
    num_slices: int
    attempt: int = 0
    epoch: int = 0
    #: seconds between assembly start and this slice's completion
    elapsed: float = 0.0

    @property
    def key(self) -> ActionKey:
        return (self.stripe_id, self.chunk_index)


@wire_message("repair_ack", 5)
@dataclass(frozen=True)
class RepairAck:
    """Destination -> coordinator: one chunk repaired — or NACKed.

    ``status == ACK_OK`` reports a completed, durably written chunk.
    ``status == ACK_FAILED`` is a NACK: the sending agent could not
    complete its part of the action (``detail`` says why) and the
    coordinator should retry or replan.
    """

    stripe_id: StripeId
    chunk_index: int
    node_id: NodeId
    attempt: int = 0
    epoch: int = 0
    status: str = ACK_OK
    detail: str = ""

    @property
    def key(self) -> ActionKey:
        return (self.stripe_id, self.chunk_index)

    @property
    def ok(self) -> bool:
        return self.status == ACK_OK


def nack(
    key: ActionKey, node_id: NodeId, attempt: int, detail: str, epoch: int = 0
) -> RepairAck:
    """Build a NACK for one action attempt."""
    return RepairAck(
        stripe_id=key[0],
        chunk_index=key[1],
        node_id=node_id,
        attempt=attempt,
        epoch=epoch,
        status=ACK_FAILED,
        detail=detail,
    )


@wire_message("write_complete", 6)
@dataclass(frozen=True)
class WriteComplete:
    """Destination -> source: the repaired chunk is durably written.

    Lets a sender run its chunk transfers as synchronous round trips —
    the next chunk's read only starts after the previous chunk is
    written at the destination, matching the sequential
    read->transmit->write decomposition of Eq. (4).
    """

    stripe_id: StripeId
    chunk_index: int
    attempt: int = 0
    epoch: int = 0

    @property
    def key(self) -> ActionKey:
        return (self.stripe_id, self.chunk_index)


@wire_message("heartbeat", 7)
@dataclass(frozen=True)
class Heartbeat:
    """Agent -> coordinator: periodic liveness beacon."""

    node_id: NodeId


@wire_message("ping", 8)
@dataclass(frozen=True)
class Ping:
    """Coordinator -> agent: liveness probe; answer with a Pong."""

    nonce: int
    #: endpoint the Pong should be sent to (issuing coordinator)
    reply_to: NodeId = -1


@wire_message("pong", 9)
@dataclass(frozen=True)
class Pong:
    """Agent -> coordinator: probe reply."""

    node_id: NodeId
    nonce: int


@wire_message("inventory_query", 10)
@dataclass(frozen=True)
class InventoryQuery:
    """Recovering coordinator -> agent: report your durable chunks.

    Also announces the successor coordinator's ``epoch``: receiving
    agents bump (and persist) their highest-seen epoch, aborting any
    in-flight work from older epochs, so the pre-crash coordinator is
    fenced the moment its successor takes over.  Epochs (and the
    fencing they drive) are tracked per ``reply_to`` endpoint, so each
    shard coordinator fences only its own predecessors.
    """

    epoch: int
    nonce: int
    #: endpoint the InventoryReply should be sent to
    reply_to: NodeId = -1


@wire_message("inventory_reply", 11, coerce=_coerce_inventory_reply)
@dataclass(frozen=True)
class InventoryReply:
    """Agent -> coordinator: stripe ids with a fully promoted chunk.

    Atomic ``.part`` promotion guarantees every listed chunk is
    complete — there is no "partially repaired" state to report.
    """

    node_id: NodeId
    epoch: int
    nonce: int
    stripes: Tuple[StripeId, ...] = ()


@wire_message("shutdown", 12)
@dataclass(frozen=True)
class Shutdown:
    """Coordinator -> agent: stop the dispatcher loop."""


# ----------------------------------------------------------------------
# gateway protocol (client-facing object store, DESIGN.md §15)
# ----------------------------------------------------------------------
#
# Two layers share the codes-≥15 block:
#
# * gateway <-> agent chunk ops (`ChunkWrite`/`ChunkRead`/`ChunkDelete`
#   + replies): the gateway reads and writes whole chunks on datanodes
#   by ``(stripe_id, chunk_index)``;
# * client <-> gateway object ops (`PutRequest`/`GetRequest`/
#   `DeleteRequest`/`StatRequest` + replies): whole objects keyed by
#   name, striped through the erasure codec by the gateway.
#
# Every payload-carrying message subclasses :class:`DataPacket` so NIC
# throttling, fault injection and CRC verification apply identically on
# all transports.  All gateway messages carry ``TRAFFIC_CLASS =
# "client"`` so an attached :class:`repro.gateway.TrafficArbiter` can
# tell foreground traffic from repair traffic at the transport layer
# (repair's :class:`DataPacket`/:class:`SlicePacket` default to
# ``"repair"``).

DataPacket.TRAFFIC_CLASS = "repair"

#: matched request/reply pairs share a nonce; one object operation
#: (which may fan out into many chunk ops) reuses its nonce throughout.


@wire_message("chunk_write", 15)
@dataclass(frozen=True)
class ChunkWrite(DataPacket):
    """Gateway -> datanode: durably store one whole chunk.

    A :class:`DataPacket` subclass (the payload is the full chunk), so
    the transfer pays NIC bandwidth and is CRC-checked.  The agent
    writes it through the throttled disk and answers with a
    :class:`ChunkWriteReply` to ``reply_to``.
    """

    nonce: int = 0
    reply_to: NodeId = -1


ChunkWrite.TRAFFIC_CLASS = "client"


@wire_message("chunk_write_reply", 16)
@dataclass(frozen=True)
class ChunkWriteReply:
    """Datanode -> gateway: outcome of a ChunkWrite (or ChunkDelete)."""

    stripe_id: StripeId
    chunk_index: int
    node_id: NodeId
    nonce: int = 0
    ok: bool = True
    detail: str = ""


ChunkWriteReply.TRAFFIC_CLASS = "client"


@wire_message("chunk_read", 17)
@dataclass(frozen=True)
class ChunkRead:
    """Gateway -> datanode: stream back one whole stored chunk.

    ``chunk_index`` is echoed into the reply so the gateway can place
    the bytes in the stripe's decode matrix without a lookup.
    """

    stripe_id: StripeId
    chunk_index: int = -1
    nonce: int = 0
    reply_to: NodeId = -1


ChunkRead.TRAFFIC_CLASS = "client"


@wire_message("chunk_read_reply", 18)
@dataclass(frozen=True)
class ChunkReadReply(DataPacket):
    """Datanode -> gateway: the requested chunk bytes (or a refusal).

    ``ok=False`` (missing/unreadable chunk) carries an empty payload
    and names the reason in ``detail`` — the gateway then decodes
    around this node instead of erroring the GET.
    """

    nonce: int = 0
    ok: bool = True
    detail: str = ""


ChunkReadReply.TRAFFIC_CLASS = "client"


@wire_message("chunk_delete", 19)
@dataclass(frozen=True)
class ChunkDelete:
    """Gateway -> datanode: drop one stored chunk (answers ChunkWriteReply)."""

    stripe_id: StripeId
    chunk_index: int = -1
    nonce: int = 0
    reply_to: NodeId = -1


ChunkDelete.TRAFFIC_CLASS = "client"


@wire_message("put_request", 20)
@dataclass(frozen=True)
class PutRequest(DataPacket):
    """Client -> gateway: store ``payload`` bytes under object ``key``."""

    key: str = ""
    nonce: int = 0
    reply_to: NodeId = -1


PutRequest.TRAFFIC_CLASS = "client"


def _coerce_put_reply(body: dict) -> dict:
    if "stripes" in body:
        body["stripes"] = tuple(body["stripes"])
    return body


@wire_message("put_reply", 21, coerce=_coerce_put_reply)
@dataclass(frozen=True)
class PutReply:
    """Gateway -> client: PUT outcome (stripe ids the object landed on)."""

    key: str
    nonce: int = 0
    ok: bool = True
    detail: str = ""
    size: int = 0
    stripes: Tuple[StripeId, ...] = ()


PutReply.TRAFFIC_CLASS = "client"


@wire_message("get_request", 22)
@dataclass(frozen=True)
class GetRequest:
    """Client -> gateway: fetch object ``key``."""

    key: str
    nonce: int = 0
    reply_to: NodeId = -1


GetRequest.TRAFFIC_CLASS = "client"


@wire_message("get_reply", 23)
@dataclass(frozen=True)
class GetReply(DataPacket):
    """Gateway -> client: the object bytes (throttled like any transfer).

    ``degraded`` reports whether any stripe had to be decoded around a
    dead/suspect/STF datanode.
    """

    key: str = ""
    nonce: int = 0
    ok: bool = True
    detail: str = ""
    degraded: bool = False


GetReply.TRAFFIC_CLASS = "client"


@wire_message("delete_request", 24)
@dataclass(frozen=True)
class DeleteRequest:
    """Client -> gateway: delete object ``key`` (chunks best-effort)."""

    key: str
    nonce: int = 0
    reply_to: NodeId = -1


DeleteRequest.TRAFFIC_CLASS = "client"


@wire_message("delete_reply", 25)
@dataclass(frozen=True)
class DeleteReply:
    """Gateway -> client: DELETE outcome."""

    key: str
    nonce: int = 0
    ok: bool = True
    detail: str = ""


DeleteReply.TRAFFIC_CLASS = "client"


@wire_message("stat_request", 26)
@dataclass(frozen=True)
class StatRequest:
    """Client -> gateway: object metadata without the bytes."""

    key: str
    nonce: int = 0
    reply_to: NodeId = -1


StatRequest.TRAFFIC_CLASS = "client"


def _coerce_stat_reply(body: dict) -> dict:
    if "stripes" in body:
        body["stripes"] = tuple(body["stripes"])
    return body


@wire_message("stat_reply", 27, coerce=_coerce_stat_reply)
@dataclass(frozen=True)
class StatReply:
    """Gateway -> client: manifest summary for one object."""

    key: str
    nonce: int = 0
    ok: bool = True
    detail: str = ""
    size: int = 0
    chunk_size: int = 0
    scheme: str = ""
    stripes: Tuple[StripeId, ...] = ()


StatReply.TRAFFIC_CLASS = "client"
