"""In-process network transport with NIC bandwidth emulation.

Stands in for the EC2 instances' network in the paper's testbed.
Every node gets an inbox queue and a pair of NIC rate limiters
(ingress/egress); delivering a :class:`DataPacket` reserves both the
sender's egress and the receiver's ingress for the packet duration,
so cross-traffic at a node serializes exactly as on a real NIC.
Control messages (commands, ACKs) are delivered unthrottled.

A :class:`~repro.runtime.faults.FaultInjector` may be attached; it is
consulted on every send and can black-hole crashed endpoints, drop,
duplicate, delay or corrupt data packets, and degrade NIC rates.
Crashed or closed endpoints swallow traffic silently — exactly what a
sender sees when the remote process is gone — so failure detection is
the coordinator's job, not the transport's.

This module is one of two backends behind the :class:`Transport`
protocol; :class:`repro.net.tcp.TcpNetwork` is the other, moving the
same messages over real sockets between OS processes.  Both emit the
same ``net_*`` metric family (:class:`NetInstruments`) so dashboards
and the trace/metrics reconciliation work identically over either.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Dict, List, Optional, Protocol, Set, runtime_checkable

from ..cluster.chunk import NodeId
from ..obs.metrics import MetricsRegistry
from .faults import FaultInjector, corrupted
from .messages import DataPacket
from .throttle import RateLimiter, reserve_transfer, sleep_until


@runtime_checkable
class Transport(Protocol):
    """What the coordinator and agents require of a network backend.

    Structural: the in-memory :class:`Network` and the socket-backed
    :class:`repro.net.tcp.TcpNetwork` both satisfy it without
    inheriting anything (``isinstance(net, Transport)`` checks conform
    at runtime).  Semantics every backend must honor:

    * ``send`` delivers in per-(src, dst) FIFO order;
    * :class:`~repro.runtime.messages.DataPacket` sends pay for
      emulated NIC bandwidth and exert backpressure on the sender;
    * sends to crashed, closed or detached endpoints vanish silently
      (black hole), sends to *unknown* nodes raise ``KeyError``;
    * an attached :class:`~repro.runtime.faults.FaultInjector` is
      consulted on every send.
    """

    faults: Optional[FaultInjector]

    def attach(
        self,
        node_id: NodeId,
        bandwidth: Optional[float],
        stop: Optional[threading.Event] = None,
    ) -> "Endpoint": ...

    def detach(self, node_id: NodeId) -> "Endpoint": ...

    def endpoint(self, node_id: NodeId) -> "Endpoint": ...

    def node_ids(self) -> List[NodeId]: ...

    def scale_bandwidth(self, node_id: NodeId, factor: float) -> None: ...

    def send(self, src: NodeId, dst: NodeId, message) -> None: ...


class NetInstruments:
    """The ``net_*`` metric family every transport backend emits.

    One shared definition keeps names, help strings and label shapes
    identical across backends, so the fault matrix and trace/metrics
    reconciliation run unchanged over sockets.
    """

    def __init__(self, metrics: Optional[MetricsRegistry]):
        m = metrics if metrics is not None else MetricsRegistry()
        self.frames_sent = m.counter(
            "net_frames_sent_total", "wire frames (messages) sent, by node"
        )
        self.frames_received = m.counter(
            "net_frames_received_total",
            "wire frames (messages) delivered into inboxes, by node",
        )
        self.frames_rejected = m.counter(
            "net_frames_rejected_total",
            "frames refused at the receiver (bad magic/version/CRC), by reason",
        )
        self.frames_dropped = m.counter(
            "net_frames_dropped_total",
            "frames abandoned by the sender (peer unreachable), by node",
        )
        self.bytes_sent = m.counter(
            "net_bytes_sent_total", "data payload bytes sent, by node"
        )
        self.bytes_received = m.counter(
            "net_bytes_received_total", "data payload bytes received, by node"
        )
        self.connections = m.gauge(
            "net_connections", "open transport connections, by direction"
        )
        self.reconnects = m.counter(
            "net_reconnects_total", "connection (re)establishments, by node"
        )
        self.send_queue_depth = m.histogram(
            "net_send_queue_depth",
            "per-peer send-queue depth sampled at each enqueue",
            buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128, 256),
        )
        self.inbox_depth = m.gauge(
            "net_inbox_depth", "receiver inbox depth after each delivery, by node"
        )


class Endpoint:
    """One node's attachment to the network.

    ``inbox_capacity`` bounds the inbox (0 = unbounded): when full, a
    delivery blocks the *sender* — the same backpressure an OS socket
    buffer exerts — so overload behaves identically on the in-memory
    and TCP backends.
    """

    def __init__(
        self,
        node_id: NodeId,
        bandwidth: Optional[float],
        stop: Optional[threading.Event] = None,
        metrics=None,
        inbox_capacity: int = 0,
    ):
        self.node_id = node_id
        self.inbox_capacity = max(int(inbox_capacity), 0)
        self.inbox: "queue.Queue" = queue.Queue(maxsize=self.inbox_capacity)
        self.nic_in = RateLimiter(
            bandwidth,
            name=f"nic_in[{node_id}]",
            stop=stop,
            metrics=metrics,
            labels={"device": "nic_in", "node": node_id},
        )
        self.nic_out = RateLimiter(
            bandwidth,
            name=f"nic_out[{node_id}]",
            stop=stop,
            metrics=metrics,
            labels={"device": "nic_out", "node": node_id},
        )
        self.closed = False

    def close(self) -> None:
        """Mark the endpoint dead; subsequent sends to it are dropped."""
        self.closed = True


class Network:
    """Registry of endpoints plus the send primitive.

    Args:
        faults: optional fault injector consulted on every send.
        metrics: optional :class:`~repro.obs.MetricsRegistry`; records
            per-node byte counters, transfer throttle waits, and inbox
            queue depths.
        inbox_capacity: bound on every endpoint's inbox (0 = unbounded);
            a full inbox blocks the sender (backpressure).
    """

    def __init__(
        self,
        faults: Optional[FaultInjector] = None,
        metrics=None,
        inbox_capacity: int = 0,
    ):
        self._endpoints: Dict[NodeId, Endpoint] = {}
        self._detached: Set[NodeId] = set()
        self._lock = threading.Lock()
        self.faults = faults
        self.metrics = metrics
        self.inbox_capacity = inbox_capacity
        #: optional QoS policy (:class:`repro.gateway.TrafficArbiter`,
        #: duck-typed): every throttled transfer is admitted through it
        #: before competing for NIC time
        self.arbiter = None
        #: total throttled payload bytes moved (telemetry)
        self.bytes_transferred = 0
        #: shared net_* metric family (same shape as the TCP backend)
        self.net = NetInstruments(metrics)
        self._sent_counter = None
        self._recv_counter = None
        self._wait_hist = None
        self._inbox_gauge = None
        if metrics is not None:
            self._sent_counter = metrics.counter(
                "transport_bytes_sent_total",
                "throttled payload bytes leaving each node's NIC",
            )
            self._recv_counter = metrics.counter(
                "transport_bytes_received_total",
                "throttled payload bytes arriving at each node's NIC",
            )
            self._wait_hist = metrics.histogram(
                "transport_throttle_wait_seconds",
                "emulated transfer duration paid per data packet",
            )
            self._inbox_gauge = metrics.gauge(
                "transport_inbox_depth",
                "receiver inbox depth sampled after each data delivery",
            )

    def attach(
        self,
        node_id: NodeId,
        bandwidth: Optional[float],
        stop: Optional[threading.Event] = None,
    ) -> Endpoint:
        """Register a node; returns its endpoint.

        ``stop`` makes the endpoint's NIC throttling interruptible on
        shutdown (see :class:`~repro.runtime.throttle.RateLimiter`).
        """
        with self._lock:
            if node_id in self._endpoints:
                raise ValueError(f"node {node_id} already attached")
            endpoint = Endpoint(
                node_id,
                bandwidth,
                stop=stop,
                metrics=self.metrics,
                inbox_capacity=self.inbox_capacity,
            )
            self._endpoints[node_id] = endpoint
            self._detached.discard(node_id)
            return endpoint

    def node_ids(self) -> List[NodeId]:
        """Ids of every currently attached node."""
        with self._lock:
            return sorted(self._endpoints)

    def detach(self, node_id: NodeId) -> Endpoint:
        """Remove a node (crashed or decommissioned) from the topology.

        The endpoint is closed; in-flight sends targeting it are
        silently dropped instead of raising, so surviving agents are
        not torn down by a peer's death.  A replacement node may then
        :meth:`attach` under the same id.
        """
        with self._lock:
            try:
                endpoint = self._endpoints.pop(node_id)
            except KeyError:
                raise KeyError(f"node {node_id} not attached") from None
            self._detached.add(node_id)
        endpoint.close()
        return endpoint

    def endpoint(self, node_id: NodeId) -> Endpoint:
        try:
            return self._endpoints[node_id]
        except KeyError:
            raise KeyError(f"node {node_id} not attached") from None

    def scale_bandwidth(self, node_id: NodeId, factor: float) -> None:
        """Degrade a node's NIC rates in place (slow-NIC fault)."""
        endpoint = self._endpoints.get(node_id)
        if endpoint is None:
            return
        for limiter in (endpoint.nic_in, endpoint.nic_out):
            if not limiter.unlimited:
                limiter.rate *= factor

    def _deliver(self, receiver: Endpoint, message) -> None:
        """Put a message in an inbox; blocks while the inbox is full."""
        receiver.inbox.put(message)
        self.net.frames_received.inc(node=receiver.node_id)
        self.net.inbox_depth.set(
            receiver.inbox.qsize(), node=receiver.node_id
        )

    def send(self, src: NodeId, dst: NodeId, message) -> None:
        """Deliver a message; DataPackets pay for bandwidth.

        The sender thread blocks for the emulated transfer duration
        (back-pressure), then the packet appears in the receiver inbox.
        Sends involving crashed, closed or detached endpoints vanish
        silently (black hole).
        """
        faults = self.faults
        if faults is not None:
            faults.tick(self)
        sender = self.endpoint(src)
        receiver = self._endpoints.get(dst)
        if receiver is None:
            if dst in self._detached:
                return  # dead peer: drop silently
            raise KeyError(f"node {dst} not attached")
        if sender.closed or receiver.closed:
            return
        if isinstance(message, DataPacket):
            if src == dst:
                raise ValueError("loopback data transfer is not modeled")
            copies = 1
            extra_delay = 0.0
            if faults is not None:
                fate = faults.on_data_packet(src, dst, message)
                if not fate.deliver:
                    return
                copies = fate.copies
                extra_delay = fate.extra_delay
                if fate.payload is not None:
                    message = corrupted(message, fate.payload)
            nbytes = len(message.payload)
            arbiter = self.arbiter
            for _ in range(copies):
                if arbiter is not None:
                    arbiter.admit(message, nbytes, stop=sender.nic_out.stop)
                deadline = reserve_transfer(
                    sender.nic_out, receiver.nic_in, nbytes
                )
                if self._wait_hist is not None:
                    wait = deadline + extra_delay - time.monotonic()
                    self._wait_hist.observe(max(wait, 0.0))
                sleep_until(deadline + extra_delay, stop=sender.nic_out.stop)
                with self._lock:
                    self.bytes_transferred += nbytes
                if self._sent_counter is not None:
                    self._sent_counter.inc(nbytes, node=src)
                    self._recv_counter.inc(nbytes, node=dst)
                self.net.frames_sent.inc(node=src)
                self.net.bytes_sent.inc(nbytes, node=src)
                self.net.bytes_received.inc(nbytes, node=dst)
                self._deliver(receiver, message)
                if self._inbox_gauge is not None:
                    self._inbox_gauge.set(
                        receiver.inbox.qsize(), node=dst
                    )
            return
        # Control path.  (Crashed-node *data* sends are dropped inside
        # on_data_packet so byte-triggered crashes still see the bytes.)
        if faults is not None and not faults.filter_message(src, dst):
            return  # a crashed node neither sends nor receives
        self.net.frames_sent.inc(node=src)
        self._deliver(receiver, message)
