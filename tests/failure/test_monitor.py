"""Tests for the cluster failure monitor and the predict->repair loop."""

import pytest

from repro.cluster import StorageCluster
from repro.core.planner import FastPRPlanner, apply_plan
from repro.failure.monitor import ClusterFailureMonitor
from repro.failure.predictor import LogisticPredictor, ThresholdPredictor
from repro.failure.smart import SmartTraceGenerator


@pytest.fixture(scope="module")
def predictor():
    fleet = SmartTraceGenerator(
        250, horizon_days=120, annual_failure_rate=0.25, seed=31
    ).generate()
    return LogisticPredictor(seed=0).fit(fleet)


def make_setup(num_nodes=15, failure_rate=0.4, seed=33):
    cluster = StorageCluster.random(
        num_nodes, 40, 5, 3, num_hot_standby=2, seed=seed
    )
    traces = SmartTraceGenerator(
        num_nodes,
        horizon_days=120,
        annual_failure_rate=failure_rate,
        seed=seed,
    ).generate()
    return cluster, traces


class TestMonitor:
    def test_flags_before_failure(self, predictor):
        cluster, traces = make_setup()
        monitor = ClusterFailureMonitor(cluster, traces, predictor)
        report = monitor.run()
        for event in report.predicted_failures:
            assert event.day < event.actual_failure_day
            assert event.lead_days > 0

    def test_marks_nodes_stf(self, predictor):
        cluster, traces = make_setup()
        monitor = ClusterFailureMonitor(cluster, traces, predictor)
        report = monitor.run()
        if report.stf_events:
            # Events fire once per disk, and the node state reflects it
            # unless the disk later actually failed.
            node_events = {e.node_id for e in report.stf_events}
            for node_id in node_events:
                assert not cluster.node(node_id).is_healthy

    def test_one_event_per_disk(self, predictor):
        cluster, traces = make_setup()
        report = ClusterFailureMonitor(cluster, traces, predictor).run()
        disks = [e.disk_id for e in report.stf_events]
        assert len(disks) == len(set(disks))

    def test_callback_receives_events_and_stores_plans(self, predictor):
        cluster, traces = make_setup()
        monitor = ClusterFailureMonitor(cluster, traces, predictor)
        seen = []

        def on_stf(event):
            seen.append(event)
            planner = FastPRPlanner(seed=0)
            plan = planner.plan(cluster, event.node_id)
            apply_plan(cluster, plan)
            return plan

        report = monitor.run(on_stf=on_stf)
        assert len(seen) == len(report.stf_events)
        for event in report.stf_events:
            assert cluster.load_of(event.node_id) == 0
            assert report.plans[event.node_id].stf_node == event.node_id

    def test_false_alarms_still_repaired(self, predictor):
        # Paper assumption 2: false alarms trigger the full repair too.
        cluster, traces = make_setup(seed=35)
        threshold = ThresholdPredictor(threshold=8.0, window_days=1)
        monitor = ClusterFailureMonitor(cluster, traces, threshold)
        repaired = []
        report = monitor.run(on_stf=lambda e: repaired.append(e.node_id) or None)
        for event in report.false_alarms:
            assert event.node_id in repaired

    def test_missed_failure_recorded(self):
        cluster, traces = make_setup(seed=36)
        # A predictor that never fires: every actual failure is missed.
        class NeverPredictor(ThresholdPredictor):
            def predict(self, window):
                return False

        report = ClusterFailureMonitor(
            cluster, traces, NeverPredictor()
        ).run()
        failing = sum(t.will_fail for t in traces)
        assert len(report.missed_failures) == failing
        assert report.stf_events == []
        for miss in report.missed_failures:
            assert cluster.node(miss.node_id).is_failed

    def test_too_many_traces_rejected(self, predictor):
        cluster, _ = make_setup(num_nodes=5)
        traces = SmartTraceGenerator(10, seed=1).generate()
        with pytest.raises(ValueError):
            ClusterFailureMonitor(cluster, traces, predictor)

    def test_explicit_bindings(self, predictor):
        cluster, traces = make_setup()
        bindings = {t.disk_id: (t.disk_id + 1) % 15 for t in traces}
        monitor = ClusterFailureMonitor(
            cluster, traces, predictor, node_bindings=bindings
        )
        report = monitor.run()
        for event in report.stf_events:
            assert event.node_id == bindings[event.disk_id]
