"""Extension bench: predictive repair for LRCs (Section III, last part).

The paper has no LRC figure, but its analysis extension predicts:

* LRC local repair (k' = k/l helpers) is much cheaper per chunk than
  RS reconstruction at comparable k;
* predictive repair still improves over reactive repair under LRC,
  though by less (migration's relative advantage shrinks when
  reconstruction is already cheap);
* the simulated LRC-aware FastPR tracks the k'-substituted optimum.
"""

from conftest import run_once

from repro.bench.harness import Experiment, Panel
from repro.core.analysis import AnalyticalModel
from repro.core.lrc_support import (
    LrcFastPRPlanner,
    LrcReconstructionOnlyPlanner,
    build_lrc_cluster,
)
from repro.core.planner import ReconstructionOnlyPlanner, profile_from_cluster
from repro.ec import make_codec
from repro.sim.cost_model import evaluate_plan


def run_lrc_extension(runs: int = 2) -> Experiment:
    exp = Experiment(
        "lrc_extension",
        "Section III extension: predictive repair under LRC(12,2,2)",
    )
    codec = make_codec("lrc(12,2,2)")  # n=16, k=12, k'=6

    analysis = Panel("Analysis — RS(16,12) vs LRC k'=6", "model")
    rs_model = AnalyticalModel(num_nodes=100, k=12)
    lrc_model = AnalyticalModel(num_nodes=100, k=12, k_prime=6)
    analysis.add_point(
        "reactive",
        {"rs": rs_model.reactive_time_per_chunk(),
         "lrc": lrc_model.reactive_time_per_chunk()},
    )
    analysis.add_point(
        "predictive",
        {"rs": rs_model.predictive_time_per_chunk(),
         "lrc": lrc_model.predictive_time_per_chunk()},
    )
    exp.panels.append(analysis)

    sim = Panel("Simulation — per-chunk repair time", "approach")
    lrc_fast, lrc_recon, rs_recon, optimum = [], [], [], []
    for run in range(runs):
        cluster = build_lrc_cluster(
            codec, num_nodes=100, num_stripes=300, seed=19 + 101 * run
        )
        stf = max(cluster.storage_node_ids(), key=cluster.load_of)
        cluster.node(stf).mark_soon_to_fail()
        kp = codec.group_size
        lrc_fast.append(
            evaluate_plan(
                cluster,
                LrcFastPRPlanner(codec, seed=run, group_size=64).plan(cluster, stf),
                k_prime=kp,
            ).time_per_chunk
        )
        lrc_recon.append(
            evaluate_plan(
                cluster,
                LrcReconstructionOnlyPlanner(codec, seed=run, group_size=64).plan(
                    cluster, stf
                ),
                k_prime=kp,
            ).time_per_chunk
        )
        rs_recon.append(
            evaluate_plan(
                cluster,
                ReconstructionOnlyPlanner(seed=run, group_size=64).plan(
                    cluster, stf
                ),
            ).time_per_chunk
        )
        model = AnalyticalModel(
            num_nodes=cluster.num_storage_nodes,
            k=codec.k,
            profile=profile_from_cluster(cluster),
            k_prime=kp,
        )
        optimum.append(model.predictive_time_per_chunk())
    n = len(lrc_fast)
    sim.add_point(
        "mean",
        {
            "lrc_fastpr": sum(lrc_fast) / n,
            "lrc_reconstruction": sum(lrc_recon) / n,
            "rs_reconstruction": sum(rs_recon) / n,
            "lrc_optimum": sum(optimum) / n,
        },
    )
    exp.panels.append(sim)
    return exp


def test_lrc_extension(benchmark, save_result):
    exp = run_once(benchmark, run_lrc_extension)
    save_result(exp)

    analysis = exp.panel("Analysis — RS(16,12) vs LRC k'=6")
    # LRC is cheaper than RS in both reactive and predictive modes.
    for i in range(2):
        assert analysis.values_of("lrc")[i] < analysis.values_of("rs")[i]
    # Predictive still beats reactive under LRC.
    lrc = analysis.values_of("lrc")
    assert lrc[1] < lrc[0]

    sim = exp.panel("Simulation — per-chunk repair time")
    lrc_fast = sim.values_of("lrc_fastpr")[0]
    lrc_recon = sim.values_of("lrc_reconstruction")[0]
    rs_recon = sim.values_of("rs_reconstruction")[0]
    lrc_opt = sim.values_of("lrc_optimum")[0]
    assert lrc_fast <= lrc_recon * 1.05, "LRC FastPR beats LRC reactive"
    assert lrc_recon < rs_recon, "local repair beats k-helper repair"
    assert lrc_fast >= lrc_opt * 0.95, "optimum is a lower bound"
    # LRC sits farther from its optimum than RS does: a local repair
    # has zero helper slack (all k' group members are required), so
    # disjoint-group packing is much more constrained than RS's
    # choose-k-of-(n-1) matching.  Assert a correspondingly wider
    # envelope.
    assert lrc_fast < lrc_opt * 3.5, "LRC FastPR tracks the k' optimum"
