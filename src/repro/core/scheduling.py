"""Algorithm 2: repair scheduling.

Given the reconstruction sets from Algorithm 1, decide per repair round
which chunks reconstruct and which migrate (Section IV-C):

* sort the sets by size, descending;
* each round reconstructs the largest unconsumed set ``R_l`` (so
  ``c_r = |R_l|``) and, in parallel, migrates ``c_m = t_r / t_m``
  chunks taken from the *smallest* sets — small sets have little
  parallelism and are better served by migration;
* when the remaining small sets fit within ``c_m``, the schedule ends.

The paper defines ``c_m = t_r / t_m``, which is fractional; an integer
chunk count needs a rounding rule (the design-choice ablation in
DESIGN.md §6.2).  ``"floor"`` guarantees migration never straggles
(``c_m * t_m <= t_r``) but degenerates to ``c_m = 0`` — i.e. pure
reconstruction — whenever ``t_r < t_m``, which happens in small
clusters where reconstruction sets shrink to one or two chunks.
``"nearest"`` (the default) lets migration overshoot a round by at most
``t_m / 2`` and keeps the methods coupled in that regime.
"""

from __future__ import annotations

import itertools
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..cluster.chunk import ChunkLocation, NodeId
from .analysis import AnalyticalModel


@dataclass
class RoundComposition:
    """Which chunks reconstruct and which migrate in one round."""

    reconstruction: List[ChunkLocation] = field(default_factory=list)
    migration: List[ChunkLocation] = field(default_factory=list)

    @property
    def cr(self) -> int:
        return len(self.reconstruction)

    @property
    def cm(self) -> int:
        return len(self.migration)


def migration_quota(
    model: AnalyticalModel, cr: int, rounding: str = "nearest"
) -> int:
    """The paper's c_m: migrated chunks per round, given c_r.

    ``c_m = t_r / t_m`` where ``t_r`` is the round's reconstruction
    time (with ``G = c_r`` for hot-standby repair) and ``t_m`` the
    per-chunk migration time.  ``rounding`` is ``"nearest"`` or
    ``"floor"``; see the module docstring for the trade-off.
    """
    if cr <= 0:
        return 0
    t_r = model.reconstruction_time(groups=cr)
    t_m = model.migration_time()
    ratio = t_r / t_m
    if rounding == "floor":
        return int(ratio)
    if rounding == "nearest":
        return int(ratio + 0.5)
    raise ValueError(f"unknown rounding mode {rounding!r}")


def schedule_repair_rounds(
    reconstruction_sets: Sequence[Sequence[ChunkLocation]],
    model: AnalyticalModel,
    seed: Optional[int] = None,
    rounding: str = "nearest",
) -> List[RoundComposition]:
    """Algorithm 2 proper.

    Args:
        reconstruction_sets: the sets ``R_1 … R_d`` from Algorithm 1
            (any order; this function sorts them).
        model: analytical model supplying ``t_m``/``t_r`` — it must be
            configured for the same scenario (scattered / hot-standby)
            the plan targets.
        seed: randomizes which chunks of the split set ``R_x`` migrate
            (the paper picks ``R'_x ⊂ R_x`` randomly).
        rounding: integerization of c_m; see :func:`migration_quota`.

    Returns:
        Round compositions in execution order.  Every input chunk
        appears in exactly one round, exactly once.
    """
    rng = random.Random(seed)
    sets: List[List[ChunkLocation]] = [
        list(s) for s in reconstruction_sets if len(s) > 0
    ]
    if not sets:
        return []
    sets.sort(key=len, reverse=True)
    rounds: List[RoundComposition] = []
    l = 0
    u = len(sets) - 1
    while True:
        current = sets[l]
        quota = migration_quota(model, len(current), rounding=rounding)
        tail_sizes = [len(sets[i]) for i in range(l + 1, u + 1)]
        tail_total = sum(tail_sizes)
        if tail_total <= quota:
            migration = [c for i in range(l + 1, u + 1) for c in sets[i]]
            rounds.append(
                RoundComposition(reconstruction=list(current), migration=migration)
            )
            break
        # Find the largest x with sum_{i=x}^{u} |R_i| > quota.
        suffix = 0
        x = u
        for i in range(u, l, -1):
            suffix += len(sets[i])
            if suffix > quota:
                x = i
                break
        # Split R_x: migrate a random subset R'_x so the round's
        # migration volume is exactly the quota.
        after_x = sum(len(sets[i]) for i in range(x + 1, u + 1))
        need = quota - after_x
        split_set = sets[x]
        rng.shuffle(split_set)
        migrated_part = split_set[:need]
        sets[x] = split_set[need:]
        migration = migrated_part + [
            c for i in range(x + 1, u + 1) for c in sets[i]
        ]
        rounds.append(
            RoundComposition(reconstruction=list(current), migration=migration)
        )
        l += 1
        u = x
        if l > u:  # defensive; cannot happen (x >= l+1 by construction)
            break
    # Any sets strictly between the final l and u were consumed; assert
    # full coverage in debug builds (tests cover this invariant too).
    return rounds


def schedule_reconstruction_only(
    reconstruction_sets: Sequence[Sequence[ChunkLocation]],
) -> List[RoundComposition]:
    """The reconstruction-only baseline: one round per set, no migration.

    This corresponds to the paper's conventional reactive repair — it
    still uses Algorithm 1's sets for parallelism, but never migrates.
    """
    return [
        RoundComposition(reconstruction=list(s))
        for s in sorted(
            (s for s in reconstruction_sets if len(s) > 0), key=len, reverse=True
        )
    ]


def schedule_migration_only(
    chunks: Sequence[ChunkLocation],
) -> List[RoundComposition]:
    """The migration-only baseline: everything migrates in one batch.

    Migration is serialized by the STF node's bandwidth regardless of
    round structure, so a single round suffices.
    """
    if not chunks:
        return []
    return [RoundComposition(migration=list(chunks))]


def order_chain(
    helpers: Sequence[NodeId],
    weights: Optional[Dict[NodeId, float]] = None,
) -> List[NodeId]:
    """Order a repair chain's helpers slowest link first.

    Multi-level pipelined repair over heterogeneous links places the
    slowest helper at the head of the chain: its single upload then
    overlaps every faster downstream hop instead of throttling the
    stream mid-chain, so the chain's completion time is governed by
    ``max`` of the link times rather than their sum over the slow
    tail.  ``weights`` maps node -> effective bandwidth (any consistent
    unit: bytes/s, or a (0, 1] scale); missing nodes count as
    ``+inf`` (never slower than a weighted one).  The sort is stable,
    so a uniform-bandwidth chain comes back in its original order and
    plans without fault-injected slowdowns are byte-identical to the
    unordered ones.
    """
    chain = list(helpers)
    if not weights:
        return chain
    return sorted(
        chain, key=lambda node: weights.get(node, float("inf"))
    )


class BudgetTimeout(RuntimeError):
    """A budget acquisition did not complete within its timeout."""


class HelperBudget:
    """Global arbiter for helper-node and NIC stream budgets.

    Concurrent repairs (shard coordinators, or several STF repairs)
    would otherwise stampede the same helper nodes: two rounds reading
    from one helper halve each other's effective bandwidth and blow
    both deadlines.  The budget grants each round its helper and
    destination *node slots* before any command is issued:

    * at most ``per_node`` concurrent repair streams may hold any one
      node (1 = a helper serves one round at a time, the paper's
      free-node assumption);
    * at most ``total_streams`` node slots may be held cluster-wide
      (the aggregate NIC budget; ``None`` = unbounded).

    Oversubscription degrades gracefully: requests queue and are
    admitted in **deadline-priority order** (smallest ``priority``
    first, FIFO within ties) instead of failing.  A strict queue —
    nobody overtakes a higher-priority waiter even if its own nodes are
    free — keeps the tightest-deadline round from starving.

    Thread-safe; acquisition blocks on a condition variable and may
    invoke a ``renew`` callback each wait tick so a queued coordinator
    keeps renewing its lease.
    """

    def __init__(
        self,
        per_node: int = 1,
        total_streams: Optional[int] = None,
        poll_interval: float = 0.05,
    ):
        if per_node < 1:
            raise ValueError("per_node must be >= 1")
        if total_streams is not None and total_streams < 1:
            raise ValueError("total_streams must be >= 1 (or None)")
        self.per_node = per_node
        self.total_streams = total_streams
        self.poll_interval = poll_interval
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._holds: Dict[NodeId, int] = {}
        self._held_total = 0
        self._waiters: List[tuple] = []  # (priority, seq) entries
        self._seq = itertools.count()
        #: telemetry: grants, waits (grants that had to queue), peak queue
        self.grants = 0
        self.waits = 0
        self.max_queue = 0

    def _fits(self, nodes: Iterable[NodeId]) -> bool:
        nodes = list(nodes)
        if self.total_streams is not None:
            if self._held_total + len(nodes) > self.total_streams:
                return False
        return all(self._holds.get(n, 0) < self.per_node for n in nodes)

    def acquire(
        self,
        nodes: Iterable[NodeId],
        priority: float = 0.0,
        timeout: Optional[float] = None,
        renew: Optional[Callable[[], None]] = None,
    ) -> None:
        """Block until every node slot is granted.

        Args:
            nodes: helper + destination nodes the round touches.
            priority: deadline-style priority; *smaller is served
                first* when the budget is oversubscribed.
            timeout: optional bound; :class:`BudgetTimeout` on expiry
                (the request leaves the queue — nothing is held).
            renew: optional liveness callback invoked on every wait
                tick (lease renewal for queued shard coordinators).
        """
        want = sorted(set(nodes))
        ticket = (priority, next(self._seq))
        expires = None if timeout is None else time.monotonic() + timeout
        with self._available:
            queued = False
            self._waiters.append(ticket)
            self._waiters.sort()
            self.max_queue = max(self.max_queue, len(self._waiters))
            try:
                while not (
                    self._waiters[0] == ticket and self._fits(want)
                ):
                    queued = True
                    if renew is not None:
                        renew()
                    wait = self.poll_interval
                    if expires is not None:
                        remaining = expires - time.monotonic()
                        if remaining <= 0:
                            raise BudgetTimeout(
                                f"budget not granted within {timeout}s "
                                f"for nodes {want}"
                            )
                        wait = min(wait, remaining)
                    self._available.wait(timeout=wait)
                for node in want:
                    self._holds[node] = self._holds.get(node, 0) + 1
                self._held_total += len(want)
                self.grants += 1
                if queued:
                    self.waits += 1
            finally:
                self._waiters.remove(ticket)
                self._available.notify_all()

    def release(self, nodes: Iterable[NodeId]) -> None:
        """Return previously acquired node slots."""
        want = sorted(set(nodes))
        with self._available:
            for node in want:
                held = self._holds.get(node, 0)
                if held <= 1:
                    self._holds.pop(node, None)
                else:
                    self._holds[node] = held - 1
                self._held_total -= 1 if held else 0
            self._available.notify_all()

    @contextmanager
    def round(
        self,
        nodes: Iterable[NodeId],
        priority: float = 0.0,
        timeout: Optional[float] = None,
        renew: Optional[Callable[[], None]] = None,
    ):
        """Context manager: hold the round's node slots for its body."""
        want = sorted(set(nodes))
        self.acquire(want, priority=priority, timeout=timeout, renew=renew)
        try:
            yield
        finally:
            self.release(want)

    def held(self, node: NodeId) -> int:
        """Streams currently holding ``node`` (introspection/tests)."""
        with self._lock:
            return self._holds.get(node, 0)
