"""Tests for stripe placement policies."""

import pytest

from repro.cluster import (
    ParityDeclusteredPlacement,
    RandomPlacement,
    RoundRobinPlacement,
    StorageCluster,
    placement_balance,
)


def make_cluster(num_nodes=10, standby=0):
    return StorageCluster(num_nodes, num_hot_standby=standby)


class TestRandomPlacement:
    def test_distinct_nodes(self):
        cluster = make_cluster()
        policy = RandomPlacement(seed=1)
        for _ in range(20):
            chosen = policy.choose(cluster, 5)
            assert len(set(chosen)) == 5

    def test_deterministic_with_seed(self):
        cluster = make_cluster()
        a = RandomPlacement(seed=5).choose(cluster, 4)
        b = RandomPlacement(seed=5).choose(cluster, 4)
        assert a == b

    def test_too_wide(self):
        cluster = make_cluster(4)
        with pytest.raises(ValueError):
            RandomPlacement(seed=0).choose(cluster, 5)

    def test_populate(self):
        cluster = make_cluster()
        RandomPlacement(seed=2).populate(cluster, 12, 5, 3)
        assert cluster.num_stripes == 12
        cluster.verify_fault_tolerance()

    def test_never_uses_standby(self):
        cluster = make_cluster(6, standby=2)
        policy = RandomPlacement(seed=3)
        for _ in range(30):
            assert all(n < 6 for n in policy.choose(cluster, 4))


class TestRoundRobinPlacement:
    def test_rotates(self):
        cluster = make_cluster(6)
        policy = RoundRobinPlacement()
        first = policy.choose(cluster, 3)
        second = policy.choose(cluster, 3)
        assert first == [0, 1, 2]
        assert second == [3, 4, 5]

    def test_wraps(self):
        cluster = make_cluster(5)
        policy = RoundRobinPlacement()
        policy.choose(cluster, 4)
        assert policy.choose(cluster, 3) == [4, 0, 1]

    def test_perfectly_balanced(self):
        cluster = make_cluster(6)
        RoundRobinPlacement().populate(cluster, 10, 3, 2)
        assert placement_balance(cluster) == pytest.approx(1.0)


class TestParityDeclusteredPlacement:
    def test_better_balance_than_worst_case(self):
        cluster = make_cluster(12)
        ParityDeclusteredPlacement(seed=0).populate(cluster, 50, 5, 3)
        assert placement_balance(cluster) < 1.2

    def test_valid_placements(self):
        cluster = make_cluster(8)
        ParityDeclusteredPlacement(seed=1).populate(cluster, 30, 5, 3)
        cluster.verify_fault_tolerance()


class TestPlacementBalance:
    def test_empty_cluster(self):
        assert placement_balance(make_cluster()) == 1.0

    def test_skewed(self):
        cluster = make_cluster(4)
        cluster.add_stripe(2, 1, [0, 1])
        cluster.add_stripe(2, 1, [0, 1])
        assert placement_balance(cluster) == pytest.approx(2.0)
