"""Unit and property tests for GF(2^8) arithmetic."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ec.galois import (
    GF_ORDER,
    GF_SIZE,
    gf_add,
    gf_addmul_bytes,
    gf_div,
    gf_exp,
    gf_inv,
    gf_log,
    gf_matmul_bytes,
    gf_mul,
    gf_mul_bytes,
    gf_pow,
    gf_sub,
)

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestScalarBasics:
    def test_add_is_xor(self):
        assert gf_add(0b1010, 0b0110) == 0b1100

    def test_sub_equals_add(self):
        assert gf_sub(200, 77) == gf_add(200, 77)

    def test_mul_by_zero(self):
        assert gf_mul(0, 123) == 0
        assert gf_mul(123, 0) == 0

    def test_mul_by_one(self):
        for a in range(256):
            assert gf_mul(1, a) == a

    def test_mul_known_value(self):
        # 2 * 128 = 0x100 mod 0x11D = 0x1D.
        assert gf_mul(2, 128) == 0x1D

    def test_div_inverse_of_mul(self):
        assert gf_div(gf_mul(57, 91), 91) == 57

    def test_div_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(5, 0)

    def test_inv_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)

    def test_pow_zero_exponent(self):
        assert gf_pow(0, 0) == 1
        assert gf_pow(37, 0) == 1

    def test_pow_of_zero(self):
        assert gf_pow(0, 5) == 0
        with pytest.raises(ZeroDivisionError):
            gf_pow(0, -1)

    def test_pow_negative_exponent(self):
        a = 19
        assert gf_mul(gf_pow(a, -1), a) == 1

    def test_log_exp_roundtrip(self):
        for a in range(1, 256):
            assert gf_exp(gf_log(a)) == a

    def test_log_of_zero_raises(self):
        with pytest.raises(ValueError):
            gf_log(0)

    def test_generator_order(self):
        # The generator's powers enumerate all 255 nonzero elements.
        seen = {gf_exp(i) for i in range(GF_ORDER)}
        assert len(seen) == GF_ORDER


class TestFieldAxioms:
    @given(elements, elements)
    def test_mul_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(elements, elements, elements)
    def test_mul_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(elements, elements, elements)
    def test_distributive(self, a, b, c):
        assert gf_mul(a, gf_add(b, c)) == gf_add(gf_mul(a, b), gf_mul(a, c))

    @given(nonzero)
    def test_inverse(self, a):
        assert gf_mul(a, gf_inv(a)) == 1

    @given(elements)
    def test_add_self_is_zero(self, a):
        assert gf_add(a, a) == 0

    @given(nonzero, elements)
    def test_div_roundtrip(self, a, b):
        assert gf_mul(gf_div(b, a), a) == b


class TestVectorOps:
    def test_mul_bytes_zero_coeff(self):
        data = np.arange(16, dtype=np.uint8)
        assert not gf_mul_bytes(0, data).any()

    def test_mul_bytes_one_coeff_copies(self):
        data = np.arange(16, dtype=np.uint8)
        out = gf_mul_bytes(1, data)
        assert np.array_equal(out, data)
        out[0] = 99
        assert data[0] == 0, "must be a copy"

    def test_mul_bytes_matches_scalar(self):
        data = np.arange(256, dtype=np.uint8)
        out = gf_mul_bytes(37, data)
        for i in range(256):
            assert out[i] == gf_mul(37, i)

    def test_mul_bytes_bad_coeff(self):
        with pytest.raises(ValueError):
            gf_mul_bytes(256, np.zeros(4, dtype=np.uint8))

    def test_addmul_accumulates(self):
        acc = np.zeros(8, dtype=np.uint8)
        data = np.full(8, 3, dtype=np.uint8)
        gf_addmul_bytes(acc, 5, data)
        gf_addmul_bytes(acc, 5, data)
        assert not acc.any(), "adding the same term twice cancels"

    def test_addmul_coeff_one_is_xor(self):
        acc = np.array([1, 2, 3], dtype=np.uint8)
        gf_addmul_bytes(acc, 1, np.array([1, 2, 3], dtype=np.uint8))
        assert not acc.any()

    def test_addmul_zero_coeff_noop(self):
        acc = np.array([9, 9], dtype=np.uint8)
        gf_addmul_bytes(acc, 0, np.array([1, 1], dtype=np.uint8))
        assert list(acc) == [9, 9]

    def test_matmul_identity(self):
        shards = np.random.default_rng(0).integers(
            0, 256, size=(3, 32), dtype=np.uint8
        )
        eye = np.eye(3, dtype=np.uint8)
        assert np.array_equal(gf_matmul_bytes(eye, shards), shards)

    def test_matmul_shape_errors(self):
        with pytest.raises(ValueError):
            gf_matmul_bytes(
                np.zeros((2, 3), dtype=np.uint8), np.zeros((4, 8), dtype=np.uint8)
            )
        with pytest.raises(ValueError):
            gf_matmul_bytes(
                np.zeros(3, dtype=np.uint8), np.zeros((3, 8), dtype=np.uint8)
            )

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_matmul_linear(self, c1, c2):
        rng = np.random.default_rng(42)
        shards = rng.integers(0, 256, size=(2, 16), dtype=np.uint8)
        matrix = np.array([[c1, c2]], dtype=np.uint8)
        out = gf_matmul_bytes(matrix, shards)[0]
        expected = gf_mul_bytes(c1, shards[0]) ^ gf_mul_bytes(c2, shards[1])
        assert np.array_equal(out, expected)
