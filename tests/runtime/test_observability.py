"""End-to-end observability: trace, metrics and journal must agree.

The acceptance bar for the observability layer: run a repair on the
emulated testbed under a fault plan, with the write-ahead journal
armed, and reconcile three independent records of the same run —

* the span trace (``Tracer``),
* the metrics registry, and
* the write-ahead journal

— per round: action counts, retry counts and round durations must all
tell the same story, and the simulator must emit the same schema.
"""

from __future__ import annotations

import pytest

from repro import (
    CoordinatorCrash,
    EmulatedTestbed,
    FastPRPlanner,
    FaultPlan,
    MetricsRegistry,
    RuntimeConfig,
    Tracer,
    make_codec,
)
from repro.cluster import StorageCluster
from repro.obs import SimClock, TraceDocument, breakdown_from_trace
from repro.runtime import (
    ActionCompleted,
    CoordinatorCrashFault,
    LinkFault,
    RepairJournal,
    RoundCompleted,
)
from repro.sim.simulator import RepairSimulator

CHUNK = 16 * 1024

FAST = RuntimeConfig(
    ack_timeout=1.5,
    join_timeout=5.0,
    deadline_margin=4.0,
    min_deadline=0.8,
    max_retries=6,
    backoff_base=0.05,
    backoff_factor=2.0,
    backoff_cap=0.2,
    probe_timeout=0.4,
    heartbeat_interval=0.1,
    poll_interval=0.05,
    journal_fsync="never",
)


def make_cluster(seed=21):
    cluster = StorageCluster.random(
        num_nodes=10,
        num_stripes=6,
        n=5,
        k=3,
        num_hot_standby=2,
        seed=seed,
        disk_bandwidth=1e9,
        network_bandwidth=1e9,
        chunk_size=CHUNK,
    )
    cluster.node(0).mark_soon_to_fail()
    return cluster


def run_repair(tmp_path, faults=None):
    cluster = make_cluster()
    journal_path = tmp_path / "repair.journal"
    testbed = EmulatedTestbed(
        cluster,
        make_codec("rs(5,3)"),
        packet_size=CHUNK // 4,
        workdir=tmp_path / "bed",
        config=FAST,
        faults=faults,
        journal_path=journal_path,
    )
    plan = FastPRPlanner(seed=3).plan(cluster, 0)
    restarts = 0
    with testbed:
        testbed.load_random_data(seed=1)
        try:
            result = testbed.execute(plan)
        except CoordinatorCrash:
            while True:
                restarts += 1
                testbed.restart_coordinator()
                try:
                    result = testbed.resume()
                    break
                except CoordinatorCrash:
                    continue
        testbed.verify_plan(plan, result)
    return testbed, result, journal_path, restarts


def reconcile(testbed, result, journal_path, crashed=False):
    """Assert trace, metrics and journal agree on the same run."""
    records = RepairJournal.replay(journal_path)
    trace = TraceDocument(testbed.tracer.to_dict())
    breakdown = breakdown_from_trace(trace)

    journaled_actions = [r for r in records if isinstance(r, ActionCompleted)]
    completed_rounds = {
        r.round_index for r in records if isinstance(r, RoundCompleted)
    }

    # Every journaled round appears in the trace (the trace may hold
    # more: a round whose span opened but crashed before completion).
    traced_rounds = {r.index for r in breakdown.rounds}
    assert completed_rounds <= traced_rounds

    # Action counts agree per round: one finished action span per
    # journaled ActionCompleted (a retried action is ONE span closed at
    # its final ACK, and ONE journal record).
    per_round_journal = {}
    for record in journaled_actions:
        per_round_journal[record.round_index] = (
            per_round_journal.get(record.round_index, 0) + 1
        )
    per_round_trace = {r.index: r.actions for r in breakdown.rounds}
    for index, count in per_round_journal.items():
        assert per_round_trace[index] == count, (
            f"round {index}: journal has {count} completed actions, "
            f"trace has {per_round_trace.get(index)}"
        )

    # Retries agree: span attrs accumulate the same retry count the
    # coordinator's counter does.  (After a coordinator crash,
    # ``result`` only covers the final incarnation, so it is excluded.)
    traced_retries = sum(r.retries for r in breakdown.rounds)
    counter = testbed.metrics.get("repair_retries_total")
    assert traced_retries == (counter.total() if counter else 0)
    if not crashed:
        assert traced_retries == result.retries

    # Metrics agree with the journal on completed actions.
    actions_counter = testbed.metrics.get("repair_actions_total")
    assert actions_counter.total() == len(journaled_actions)

    # Journal write volume is itself metered.
    records_counter = testbed.metrics.get("journal_records_total")
    assert records_counter.total() == len(records)

    # Round durations agree between the trace and the coordinator's own
    # measurement (both bracket the same round execution).  A crashed
    # run's breakdown folds every incarnation's span for a round, while
    # ``result.round_times`` covers only the last one, so the trace can
    # only be longer there.
    for index, measured in enumerate(result.round_times):
        if index in per_round_trace:
            entry = next(r for r in breakdown.rounds if r.index == index)
            if crashed:
                assert entry.duration >= measured - 0.05
            else:
                assert entry.duration == pytest.approx(measured, abs=0.05)
    return breakdown


class TestTraceJournalReconciliation:
    def test_clean_run(self, tmp_path):
        testbed, result, journal_path, _ = run_repair(tmp_path)
        breakdown = reconcile(testbed, result, journal_path)
        assert breakdown.total_actions == result.chunks_repaired
        assert breakdown.attrs["resumed"] is False

    def test_faulted_run_with_retries(self, tmp_path):
        faults = FaultPlan(links=[LinkFault(drop=0.1)], seed=11)
        testbed, result, journal_path, _ = run_repair(tmp_path, faults=faults)
        reconcile(testbed, result, journal_path)

    def test_crash_recovery_folds_into_one_breakdown(self, tmp_path):
        faults = FaultPlan(
            coordinator_crashes=[CoordinatorCrashFault(after_records=4)]
        )
        testbed, result, journal_path, restarts = run_repair(
            tmp_path, faults=faults
        )
        assert restarts >= 1
        breakdown = reconcile(testbed, result, journal_path, crashed=True)
        # Two repair spans (crashed run + resume), folded by round index.
        repairs = TraceDocument(testbed.tracer.to_dict()).named("repair")
        assert len(repairs) == 1 + restarts
        assert any(r["attrs"].get("resumed") for r in repairs)
        assert breakdown.rounds, "resume produced no round spans"


class TestSimulatorTraceParity:
    def test_simulator_emits_same_schema(self):
        cluster = make_cluster()
        plan = FastPRPlanner(seed=3).plan(cluster, 0)
        metrics = MetricsRegistry()
        tracer = Tracer(clock=SimClock())
        sim = RepairSimulator(cluster, metrics=metrics, tracer=tracer)
        sim_result = sim.run(plan)
        breakdown = breakdown_from_trace(tracer.to_dict())
        assert len(breakdown.rounds) == len(plan.rounds)
        assert breakdown.total_actions == metrics.get(
            "repair_actions_total"
        ).total()
        # Simulated trace time matches the simulator's own clock.
        assert breakdown.total_seconds == pytest.approx(
            sim_result.total_time, rel=0.01
        )

    def test_simulator_rejects_wall_clock_tracer(self):
        cluster = make_cluster()
        with pytest.raises(ValueError, match="SimClock"):
            RepairSimulator(cluster, tracer=Tracer())
