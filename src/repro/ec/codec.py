"""Erasure-codec abstractions.

Defines the interface every erasure code in this repository implements,
plus a small registry so that experiments can name codes by scheme
string (e.g. ``"rs(9,6)"`` or ``"lrc(12,2,2)"``) the way the paper
names them in its figures.

A codec operates on *stripes*: ``k`` source chunks are encoded into
``n`` coded chunks, and any allowed subset of coded chunks can rebuild
the missing ones.  Chunks are ``bytes``-like buffers of equal length.
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence


class DecodeError(ValueError):
    """Raised when the surviving chunks cannot rebuild the lost ones."""


def normalize_wanted(wanted: Sequence, batch: int) -> List[List[int]]:
    """Expand a ``decode_batch`` wanted spec to one index list per stripe.

    Accepts either a flat list of chunk indices (broadcast to every
    stripe) or a sequence of ``batch`` per-stripe index lists.
    """
    wanted = list(wanted)
    if not wanted or not hasattr(wanted[0], "__iter__"):
        flat = [int(w) for w in wanted]
        return [list(flat) for _ in range(batch)]
    per_stripe = [[int(i) for i in w] for w in wanted]
    if len(per_stripe) != batch:
        raise ValueError(
            f"per-stripe wanted needs one entry per stripe: "
            f"{len(per_stripe)} != {batch}"
        )
    return per_stripe


@dataclass(frozen=True)
class RepairCost:
    """Cost of repairing a single lost chunk.

    Attributes:
        helpers: number of distinct helper nodes read from (the paper's
            ``k'``; ``k`` for RS, ``k/l`` for a local LRC repair).
        traffic_chunks: repair traffic in units of chunk size (equals
            ``helpers`` for RS/LRC conventional repair).
    """

    helpers: int
    traffic_chunks: float


class ErasureCodec(ABC):
    """Abstract erasure code over byte chunks.

    Concrete codecs are immutable and safe to share across threads.
    """

    #: total chunks per stripe
    n: int
    #: source chunks per stripe
    k: int

    @abstractmethod
    def encode(self, data_chunks: Sequence[bytes]) -> List[bytes]:
        """Encode ``k`` equal-size data chunks into ``n`` coded chunks.

        For systematic codes the first ``k`` outputs are the inputs.
        """

    @abstractmethod
    def decode(
        self,
        available: Dict[int, bytes],
        wanted: Sequence[int],
    ) -> Dict[int, bytes]:
        """Rebuild the chunks at the ``wanted`` indices.

        Args:
            available: mapping from chunk index (0..n-1) to its bytes.
            wanted: indices of the chunks to reconstruct.

        Returns:
            Mapping from each wanted index to its reconstructed bytes.

        Raises:
            DecodeError: if ``available`` is insufficient.
        """

    def encode_batch(
        self, stripes: Sequence[Sequence[bytes]]
    ) -> List[List[bytes]]:
        """Encode many stripes at once.

        Semantically identical to ``[self.encode(s) for s in stripes]``.
        Codecs whose math is a GF matrix product override this to stack
        the batch into one wide matrix multiply, which amortizes the
        per-call Python overhead over ``B * L`` bytes instead of ``L``.
        """
        return [self.encode(stripe) for stripe in stripes]

    def decode_batch(
        self,
        stripes: Sequence[Dict[int, bytes]],
        wanted: Sequence,
    ) -> List[Dict[int, bytes]]:
        """Rebuild the ``wanted`` indices of many stripes at once.

        ``wanted`` is either one flat index list shared by every stripe
        or a per-stripe sequence of index lists (one entry per stripe,
        as produced by mixed erasure sets).  Semantically identical to
        ``[self.decode(a, w) for a, w in zip(stripes, wanted)]`` with
        the shared form broadcast.  Overrides may batch stripes that
        share the same availability and wanted sets into a single
        matrix operation.
        """
        stripes = list(stripes)
        per_stripe = normalize_wanted(wanted, len(stripes))
        return [
            self.decode(available, want)
            for available, want in zip(stripes, per_stripe)
        ]

    @abstractmethod
    def repair_helpers(self, lost_index: int, alive: Sequence[int]) -> List[int]:
        """Choose the helper chunk indices used to repair one lost chunk.

        Returns the (minimal, code-specific) set of surviving chunk
        indices that a single-chunk repair reads.

        Raises:
            DecodeError: if the lost chunk is unrepairable from ``alive``.
        """

    def single_repair_cost(self) -> RepairCost:
        """Cost of a single-chunk repair in the common (non-degraded) case."""
        return RepairCost(helpers=self.k, traffic_chunks=float(self.k))

    @property
    def storage_overhead(self) -> float:
        """Redundancy factor n/k."""
        return self.n / self.k

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n}, k={self.k})"


_REGISTRY: Dict[str, Callable[..., ErasureCodec]] = {}


def register_codec(name: str, factory: Callable[..., ErasureCodec]) -> None:
    """Register a codec factory under a scheme name (e.g. ``"rs"``)."""
    _REGISTRY[name.lower()] = factory


_SCHEME_RE = re.compile(r"^\s*([a-zA-Z_]+)\s*\(\s*([\d\s,]+)\)\s*$")


def make_codec(scheme: str) -> ErasureCodec:
    """Instantiate a codec from a scheme string.

    Examples:
        >>> make_codec("rs(9,6)").n
        9
        >>> make_codec("RS(14, 10)").k
        10
    """
    match = _SCHEME_RE.match(scheme)
    if not match:
        raise ValueError(f"unparseable codec scheme: {scheme!r}")
    name = match.group(1).lower()
    params = [int(p) for p in match.group(2).split(",")]
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ValueError(
            f"unknown codec {name!r}; registered: {sorted(_REGISTRY)}"
        )
    return factory(*params)


def registered_schemes() -> List[str]:
    """Return the registered scheme names."""
    return sorted(_REGISTRY)


def check_equal_sizes(chunks: Sequence[bytes], expected: Optional[int] = None) -> int:
    """Validate that all chunks share one size; return that size."""
    if not chunks:
        raise ValueError("no chunks supplied")
    size = len(chunks[0]) if expected is None else expected
    for i, chunk in enumerate(chunks):
        if len(chunk) != size:
            raise ValueError(
                f"chunk {i} has size {len(chunk)}, expected {size}"
            )
    return size
