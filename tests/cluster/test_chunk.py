"""Tests for stripe and chunk metadata."""

import pytest

from repro.cluster.chunk import ChunkLocation, Stripe, StripeCatalog


class TestStripe:
    def test_basic_properties(self):
        stripe = Stripe(3, 5, 3, [10, 11, 12, 13, 14])
        assert stripe.placement == (10, 11, 12, 13, 14)
        assert stripe.nodes == frozenset({10, 11, 12, 13, 14})
        assert stripe.node_of(2) == 12

    def test_wrong_placement_length(self):
        with pytest.raises(ValueError, match="placement has"):
            Stripe(0, 5, 3, [1, 2, 3])

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ValueError, match="distinct nodes"):
            Stripe(0, 4, 2, [1, 2, 2, 3])

    def test_bad_k(self):
        with pytest.raises(ValueError):
            Stripe(0, 4, 4, [1, 2, 3, 4])
        with pytest.raises(ValueError):
            Stripe(0, 4, 0, [1, 2, 3, 4])

    def test_chunk_index_on(self):
        stripe = Stripe(0, 3, 2, [7, 8, 9])
        assert stripe.chunk_index_on(8) == 1
        with pytest.raises(KeyError):
            stripe.chunk_index_on(99)

    def test_stores_on(self):
        stripe = Stripe(0, 3, 2, [7, 8, 9])
        assert stripe.stores_on(7)
        assert not stripe.stores_on(10)

    def test_relocate(self):
        stripe = Stripe(0, 3, 2, [7, 8, 9])
        stripe.relocate(0, 20)
        assert stripe.node_of(0) == 20
        assert not stripe.stores_on(7)

    def test_relocate_onto_member_rejected(self):
        stripe = Stripe(0, 3, 2, [7, 8, 9])
        with pytest.raises(ValueError, match="already stores"):
            stripe.relocate(0, 9)

    def test_locations(self):
        stripe = Stripe(5, 3, 2, [1, 2, 3])
        locs = list(stripe.locations())
        assert locs[0] == ChunkLocation(5, 0, 1)
        assert len(locs) == 3

    def test_surviving_indices(self):
        stripe = Stripe(0, 4, 2, [1, 2, 3, 4])
        assert stripe.surviving_indices(frozenset({2, 4})) == [0, 2]


class TestStripeCatalog:
    def test_add_and_lookup(self):
        catalog = StripeCatalog()
        stripe = Stripe(0, 3, 2, [1, 2, 3])
        catalog.add(stripe)
        assert catalog[0] is stripe
        assert len(catalog) == 1

    def test_duplicate_id_rejected(self):
        catalog = StripeCatalog()
        catalog.add(Stripe(0, 3, 2, [1, 2, 3]))
        with pytest.raises(ValueError):
            catalog.add(Stripe(0, 3, 2, [4, 5, 6]))

    def test_chunks_on_node(self):
        catalog = StripeCatalog()
        catalog.add(Stripe(0, 3, 2, [1, 2, 3]))
        catalog.add(Stripe(1, 3, 2, [2, 3, 4]))
        found = catalog.chunks_on_node(2)
        assert {(c.stripe_id, c.chunk_index) for c in found} == {(0, 1), (1, 0)}

    def test_iteration(self):
        catalog = StripeCatalog()
        catalog.add(Stripe(0, 3, 2, [1, 2, 3]))
        catalog.add(Stripe(1, 3, 2, [4, 5, 6]))
        assert sorted(s.stripe_id for s in catalog) == [0, 1]


class TestChunkLocation:
    def test_str(self):
        assert str(ChunkLocation(3, 1, 9)) == "S3:C1@N9"

    def test_equality_and_hash(self):
        a = ChunkLocation(1, 2, 3)
        b = ChunkLocation(1, 2, 3)
        assert a == b
        assert hash(a) == hash(b)
