"""Rack/machine topology and rack-aware stripe placement.

Production erasure-coded stores spread each stripe across failure
domains (racks) so that a rack outage costs at most a bounded number of
chunks per stripe.  The paper's evaluation uses flat clusters, but a
reproduction meant for reuse needs the fault-domain machinery: a
:class:`RackTopology` mapping nodes to racks (and, optionally, to
machines nested inside racks — the Sector/Disk/Machine/Rack hierarchy
of correlated-failure models), a placement policy that enforces a
per-rack chunk bound, and a verifier for the invariant.  Failure
domains feed fault injection: one
:class:`~repro.runtime.faults.DomainCrashFault` resolves through
:meth:`RackTopology.nodes_in_domain` into a correlated batch of node
crashes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .chunk import NodeId
from .cluster import StorageCluster
from .placement import PlacementPolicy


class RackViolationError(ValueError):
    """A stripe exceeds its per-rack chunk bound."""


#: failure-domain kinds a fault can target (coarse to fine)
DOMAIN_KINDS = ("rack", "machine")


@dataclass(frozen=True)
class RackTopology:
    """Immutable node -> rack (and optional node -> machine) assignment.

    ``machine_of`` is the finer failure domain: several nodes (disks /
    VMs) co-located on one physical machine die together when it does.
    Machines are expected to nest inside racks — every node of a
    machine sits in one rack — which :meth:`uniform` guarantees by
    construction.
    """

    rack_of: Dict[NodeId, int]
    machine_of: Optional[Dict[NodeId, int]] = None

    @classmethod
    def uniform(
        cls,
        node_ids: Sequence[NodeId],
        num_racks: int,
        nodes_per_machine: Optional[int] = None,
    ) -> "RackTopology":
        """Spread nodes over ``num_racks`` racks round-robin.

        With ``nodes_per_machine`` set, nodes are first grouped into
        machines of that size and whole machines are dealt round-robin
        onto racks, so a machine never straddles racks.
        """
        if num_racks < 1:
            raise ValueError("need at least one rack")
        if nodes_per_machine is None:
            return cls(
                rack_of={
                    node_id: i % num_racks
                    for i, node_id in enumerate(node_ids)
                }
            )
        if nodes_per_machine < 1:
            raise ValueError("nodes_per_machine must be >= 1")
        machine_of = {
            node_id: i // nodes_per_machine
            for i, node_id in enumerate(node_ids)
        }
        rack_of = {
            node_id: machine % num_racks
            for node_id, machine in machine_of.items()
        }
        return cls(rack_of=rack_of, machine_of=machine_of)

    @property
    def num_racks(self) -> int:
        return len(set(self.rack_of.values()))

    def nodes_in_rack(self, rack: int) -> List[NodeId]:
        return sorted(n for n, r in self.rack_of.items() if r == rack)

    def racks(self) -> List[int]:
        return sorted(set(self.rack_of.values()))

    def machines(self) -> List[int]:
        if self.machine_of is None:
            return []
        return sorted(set(self.machine_of.values()))

    def nodes_in_machine(self, machine: int) -> List[NodeId]:
        if self.machine_of is None:
            return []
        return sorted(
            n for n, m in self.machine_of.items() if m == machine
        )

    def nodes_in_domain(self, kind: str, index: int) -> List[NodeId]:
        """Nodes a failure of domain ``kind``/``index`` takes down.

        Raises:
            ValueError: unknown kind, or a machine domain on a
                topology without a machine map.
        """
        if kind == "rack":
            return self.nodes_in_rack(index)
        if kind == "machine":
            if self.machine_of is None:
                raise ValueError(
                    "topology has no machine map; build it with "
                    "RackTopology.uniform(..., nodes_per_machine=...)"
                )
            return self.nodes_in_machine(index)
        raise ValueError(
            f"unknown failure domain kind {kind!r}; expected one of "
            f"{DOMAIN_KINDS}"
        )

    def rack_counts(self, nodes: Sequence[NodeId]) -> Dict[int, int]:
        """How many of ``nodes`` sit in each rack."""
        counts: Dict[int, int] = {}
        for node in nodes:
            rack = self.rack_of[node]
            counts[rack] = counts.get(rack, 0) + 1
        return counts


class RackAwarePlacement(PlacementPolicy):
    """Places each stripe with at most ``max_per_rack`` chunks per rack.

    With ``max_per_rack <= n - k`` a whole-rack failure never destroys
    more chunks of a stripe than the code tolerates.

    Args:
        topology: node -> rack map covering all storage nodes.
        max_per_rack: per-stripe, per-rack chunk bound.
        seed: randomizes node choice within racks.
    """

    def __init__(
        self,
        topology: RackTopology,
        max_per_rack: int = 1,
        seed: Optional[int] = None,
    ):
        if max_per_rack < 1:
            raise ValueError("max_per_rack must be >= 1")
        self.topology = topology
        self.max_per_rack = max_per_rack
        self._rng = random.Random(seed)

    def choose(self, cluster: StorageCluster, n: int) -> List[NodeId]:
        candidates = [
            node
            for node in cluster.storage_node_ids()
            if node in self.topology.rack_of
        ]
        if n > len(candidates):
            raise ValueError(f"n={n} exceeds {len(candidates)} mapped nodes")
        capacity = self.topology.num_racks * self.max_per_rack
        if n > capacity:
            raise ValueError(
                f"stripe width {n} exceeds rack capacity "
                f"{self.topology.num_racks} racks x {self.max_per_rack}"
            )
        # Group candidates by rack, least-loaded first within each.
        by_rack: Dict[int, List[NodeId]] = {}
        for node in candidates:
            by_rack.setdefault(self.topology.rack_of[node], []).append(node)
        for nodes in by_rack.values():
            self._rng.shuffle(nodes)
            nodes.sort(key=cluster.load_of)
        chosen: List[NodeId] = []
        used_per_rack: Dict[int, int] = {}
        # Round-robin across racks ordered by aggregate load.
        while len(chosen) < n:
            progress = False
            racks = sorted(
                by_rack,
                key=lambda r: sum(cluster.load_of(x) for x in by_rack[r]),
            )
            for rack in racks:
                if len(chosen) == n:
                    break
                if used_per_rack.get(rack, 0) >= self.max_per_rack:
                    continue
                if not by_rack[rack]:
                    continue
                chosen.append(by_rack[rack].pop(0))
                used_per_rack[rack] = used_per_rack.get(rack, 0) + 1
                progress = True
            if not progress:
                raise ValueError(
                    f"cannot place {n} chunks with max_per_rack="
                    f"{self.max_per_rack}"
                )
        return chosen


def verify_rack_tolerance(
    cluster: StorageCluster,
    topology: RackTopology,
    max_per_rack: Optional[int] = None,
) -> None:
    """Check every stripe's per-rack chunk bound.

    Args:
        max_per_rack: bound to enforce; defaults to each stripe's
            ``n - k`` (rack failure never exceeds the code's tolerance).

    Raises:
        RackViolationError: on the first violating stripe.
    """
    for stripe in cluster.stripes():
        bound = max_per_rack if max_per_rack is not None else stripe.n - stripe.k
        counts = topology.rack_counts(list(stripe.placement))
        for rack, count in counts.items():
            if count > bound:
                raise RackViolationError(
                    f"stripe {stripe.stripe_id} has {count} chunks in rack "
                    f"{rack} (bound {bound})"
                )
