"""One instrumented repair, summarized as ``BENCH_repair_rounds.json``.

CI's ``bench-smoke`` job runs this module against a small synthetic
cluster and uploads the result as an artifact, so every commit carries
a machine-readable record of what one repair round actually costs on
the emulated testbed: per-round durations, the migration versus
reconstruction split, and the headline transport/agent counters.  The
document rides on :class:`repro.core.serde.Schema`, and the generated
file is schema-validated before it is written — an empty or malformed
run fails the job instead of uploading garbage.

The module also measures the socket transport itself: a loopback
:class:`~repro.net.TcpNetwork` streams DataPacket frames at 64 KiB and
1 MiB payloads, and the frames/s + MB/s land in
``BENCH_net_throughput.json`` — so a wire-codec or event-loop
regression shows up as a number, not a hunch.

Usage::

    python -m repro.bench.smoke -o BENCH_repair_rounds.json \
        --net-output BENCH_net_throughput.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional, Sequence

from ..core.serde import Schema

#: Counters copied verbatim into the bench document.  A short, stable
#: list — the full registry goes to ``--metrics-out`` on real runs; the
#: bench file only tracks the totals worth eyeballing across commits.
_HEADLINE_COUNTERS = (
    "repair_actions_total",
    "repair_retries_total",
    "repair_replans_total",
    "agent_bytes_sent_total",
    "agent_bytes_received_total",
    "transport_bytes_sent_total",
)

BENCH_SCHEMA = Schema(
    "bench-repair-rounds",
    version=1,
    fields=("config", "result", "rounds", "counters"),
    required=("config", "result", "rounds", "counters"),
)


def run_smoke(seed: int = 7) -> dict:
    """Run one small instrumented repair and return the bench document.

    The cluster shape matches the test fixtures (12 nodes, RS(5,3),
    64 KiB chunks) but with enough stripes that the repair spans
    multiple rounds, so the per-round breakdown is never trivial.
    """
    from ..cluster import StorageCluster
    from ..core.plan import RepairScenario
    from ..core.planner import FastPRPlanner
    from ..ec import make_codec
    from ..obs import MetricsRegistry, Tracer, breakdown_from_trace
    from ..runtime.testbed import EmulatedTestbed

    nodes, stripes, stf = 12, 20, 2
    codec = make_codec("rs(5,3)")
    cluster = StorageCluster.random(
        nodes, stripes, codec.n, codec.k, seed=seed, chunk_size=1 << 16
    )
    cluster.node(stf).mark_soon_to_fail()
    plan = FastPRPlanner(
        scenario=RepairScenario.SCATTERED, seed=seed
    ).plan(cluster, stf)
    plan.validate(cluster)

    metrics = MetricsRegistry()
    tracer = Tracer()
    with EmulatedTestbed(
        cluster, codec, metrics=metrics, tracer=tracer
    ) as testbed:
        testbed.load_random_data(seed=seed)
        result = testbed.execute(plan)
        testbed.verify_plan(plan, result)

    breakdown = breakdown_from_trace(tracer.to_dict())
    counters = {
        metric.name: metric.total()
        for metric in metrics
        if metric.name in _HEADLINE_COUNTERS
    }
    body = {
        "config": {
            "nodes": nodes,
            "stripes": stripes,
            "code": f"rs({codec.n},{codec.k})",
            "chunk_size": cluster.chunk_size,
            "seed": seed,
            "stf": stf,
            "scenario": RepairScenario.SCATTERED.value,
        },
        "result": {
            "chunks_repaired": result.chunks_repaired,
            "total_time_s": result.total_time,
            "bytes_transferred": result.bytes_transferred,
            "retries": result.retries,
            "replans": result.replans,
        },
        "rounds": [r.to_dict() for r in breakdown.rounds],
        "counters": counters,
    }
    return BENCH_SCHEMA.dump(body)


def validate(document: dict) -> dict:
    """Schema-check a bench document; reject empty-round runs."""
    body = BENCH_SCHEMA.load(document)
    if not body["rounds"]:
        raise ValueError("bench document has no repair rounds")
    if body["result"]["chunks_repaired"] <= 0:
        raise ValueError("bench repair recovered no chunks")
    return body


NET_BENCH_SCHEMA = Schema(
    "bench-net-throughput",
    version=1,
    fields=("transport", "runs"),
    required=("transport", "runs"),
)

#: payload sizes the throughput sweep always covers
_NET_PAYLOAD_SIZES = (1 << 16, 1 << 20)  # 64 KiB, 1 MiB


def run_net_throughput(
    sizes: Sequence[int] = _NET_PAYLOAD_SIZES, frames: int = 32
) -> dict:
    """Stream frames over a loopback TCP socket; return the bench doc.

    Endpoints attach unthrottled (``bandwidth=None``), so the numbers
    measure the wire codec + asyncio socket path, not the emulated NIC.
    """
    from ..net import TcpNetwork
    from ..runtime.messages import DataPacket

    runs = []
    for size in sizes:
        net = TcpNetwork(send_queue_capacity=128)
        try:
            net.attach(0, None)
            net.attach(1, None)
            host, port = net.listen()
            net.add_peer(1, host, port)
            payload = bytes(size)
            inbox = net.endpoint(1).inbox
            # one warm-up frame establishes the connection off the clock
            net.send(0, 1, DataPacket(0, 0, 0, 0, payload))
            inbox.get(timeout=60)
            started = time.perf_counter()
            for i in range(frames):
                net.send(0, 1, DataPacket(0, 0, 0, i * size, payload))
            for _ in range(frames):
                inbox.get(timeout=60)
            elapsed = time.perf_counter() - started
        finally:
            net.close()
        runs.append(
            {
                "payload_bytes": size,
                "frames": frames,
                "seconds": elapsed,
                "frames_per_s": frames / elapsed,
                "mb_per_s": frames * size / elapsed / 1e6,
            }
        )
    return NET_BENCH_SCHEMA.dump({"transport": "tcp-loopback", "runs": runs})


def validate_net(document: dict) -> dict:
    """Schema-check a net-throughput document; reject empty sweeps."""
    body = NET_BENCH_SCHEMA.load(document)
    if not body["runs"]:
        raise ValueError("net bench document has no runs")
    for run in body["runs"]:
        if run["frames"] <= 0 or run["mb_per_s"] <= 0:
            raise ValueError(f"degenerate net bench run: {run}")
    return body


DURABILITY_SCHEMA = Schema(
    "bench-durability",
    version=1,
    fields=("config", "processes"),
    required=("config", "processes"),
)


def run_durability(trials: int = 50, years: float = 1.0, seed: int = 7) -> dict:
    """Monte-Carlo durability study; returns ``BENCH_durability.json``.

    CI's ``lifetime-sim`` job runs this with the defaults: 50 trials of
    one simulated year on an RS(9,6) cluster under two failure
    processes — Weibull renewals and SMART-trace replay through the
    threshold predictor — each with predictive repair on and off, plus
    latent sector errors surfaced by a 14-day scrub cycle.  The
    acceptance bar (:func:`validate_durability`) is zero lost stripes
    across every predictive-mode trial.
    """
    from ..failure.predictor import ThresholdPredictor
    from ..failure.smart import SmartTraceGenerator
    from ..sim.lifetime import (
        LifetimeConfig,
        TraceReplayProcess,
        WeibullFailureProcess,
        durability_study,
    )

    config = LifetimeConfig(
        num_disks=30,
        num_stripes=120,
        n=9,
        k=6,
        years=years,
        repair_concurrency=2,
        latent_errors_per_disk_year=0.3,
        scrub_interval_days=14.0,
    )
    traces = SmartTraceGenerator(
        num_disks=60, annual_failure_rate=0.12, seed=seed
    ).generate()
    processes = [
        WeibullFailureProcess(annual_failure_rate=0.08),
        TraceReplayProcess(traces, ThresholdPredictor()),
    ]
    entries = durability_study(processes, config, trials=trials, seed=seed)
    return DURABILITY_SCHEMA.dump(
        {
            "config": {
                "trials": trials,
                "years": years,
                "seed": seed,
                "disks": config.num_disks,
                "stripes": config.num_stripes,
                "code": f"rs({config.n},{config.k})",
                "repair_concurrency": config.repair_concurrency,
                "latent_errors_per_disk_year": (
                    config.latent_errors_per_disk_year
                ),
                "scrub_interval_days": config.scrub_interval_days,
            },
            "processes": entries,
        }
    )


def validate_durability(document: dict, require_zero_loss: bool = True) -> dict:
    """Schema-check a durability document; enforce the zero-loss bar.

    Args:
        require_zero_loss: assert that every process shows zero lost
            stripes with predictive repair on (the CI acceptance bar).
    """
    body = DURABILITY_SCHEMA.load(document)
    if not body["processes"]:
        raise ValueError("durability document covers no failure processes")
    for entry in body["processes"]:
        for mode in ("predictive", "reactive"):
            if mode not in entry:
                raise ValueError(
                    f"process {entry.get('process')!r} lacks a {mode} run"
                )
            if entry[mode]["trials"] <= 0:
                raise ValueError(
                    f"process {entry.get('process')!r} {mode} ran no trials"
                )
        if entry["predictive"]["disk_failures"] <= 0:
            raise ValueError(
                f"process {entry.get('process')!r} produced no disk "
                "failures; the study measured nothing"
            )
        if (
            require_zero_loss
            and entry["predictive"]["lost_stripe_probability"] > 0
        ):
            raise ValueError(
                f"process {entry.get('process')!r} lost stripes with "
                "predictive repair on: P(loss)="
                f"{entry['predictive']['lost_stripe_probability']:.4f}"
            )
    return body


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.smoke", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="cluster/data RNG seed"
    )
    parser.add_argument(
        "-o",
        "--output",
        default="BENCH_repair_rounds.json",
        help="where to write the bench document",
    )
    parser.add_argument(
        "--net-output",
        default="BENCH_net_throughput.json",
        help="where to write the loopback TCP throughput document "
        "('' skips the sweep)",
    )
    parser.add_argument(
        "--net-frames",
        type=int,
        default=32,
        help="frames streamed per payload size in the throughput sweep",
    )
    parser.add_argument(
        "--durability-output",
        default="",
        help="where to write the Monte-Carlo durability document "
        "('' skips the study)",
    )
    parser.add_argument(
        "--durability-trials",
        type=int,
        default=50,
        help="lifetime trials per (process, mode) cell of the study",
    )
    parser.add_argument(
        "--durability-years",
        type=float,
        default=1.0,
        help="simulated years per lifetime trial",
    )
    parser.add_argument(
        "--durability-only",
        action="store_true",
        help="run only the durability study (skip repair + net benches)",
    )
    args = parser.parse_args(argv)
    if args.durability_only and not args.durability_output:
        args.durability_output = "BENCH_durability.json"
    if args.durability_output:
        durability = run_durability(
            trials=args.durability_trials,
            years=args.durability_years,
            seed=args.seed,
        )
        validate_durability(durability)
        with open(args.durability_output, "w") as f:
            json.dump(durability, f, indent=2, sort_keys=True)
            f.write("\n")
        for entry in durability["processes"]:
            print(
                f"wrote {args.durability_output}: {entry['process']} "
                f"P(loss) predictive="
                f"{entry['predictive']['lost_stripe_probability']:.4f} "
                f"reactive="
                f"{entry['reactive']['lost_stripe_probability']:.4f}, "
                "chunk-days at risk "
                f"{entry['predictive']['mean_chunk_days_at_risk']:.1f} vs "
                f"{entry['reactive']['mean_chunk_days_at_risk']:.1f}"
            )
        if args.durability_only:
            return 0
    document = run_smoke(seed=args.seed)
    validate(document)
    with open(args.output, "w") as f:
        json.dump(document, f, indent=2, sort_keys=True)
        f.write("\n")
    rounds = document["rounds"]
    print(
        f"wrote {args.output}: {document['result']['chunks_repaired']} "
        f"chunks over {len(rounds)} rounds, "
        f"{document['result']['total_time_s']:.2f}s total"
    )
    if args.net_output:
        net_doc = run_net_throughput(frames=args.net_frames)
        validate_net(net_doc)
        with open(args.net_output, "w") as f:
            json.dump(net_doc, f, indent=2, sort_keys=True)
            f.write("\n")
        for run in net_doc["runs"]:
            print(
                f"wrote {args.net_output}: {run['payload_bytes']} B frames "
                f"at {run['frames_per_s']:.0f} frames/s, "
                f"{run['mb_per_s']:.1f} MB/s"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
