"""Classification-tree disk-failure predictor (CART).

The paper's prediction lineage includes Li et al.'s "Hard Drive
Failure Prediction Using Classification and Regression Trees"
(DSN 2014, the paper's reference [18]).  This module implements a CART
classifier from scratch on numpy — Gini-impurity splits over the same
windowed SMART features the logistic predictor uses — so the fleet
experiments can compare a tree against the linear model, as that line
of work does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .predictor import FailurePredictor, window_features
from .smart import DiskTrace, SmartSample


def training_windows(
    traces: Sequence[DiskTrace], window_days: int, lead_days: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Feature matrix and labels over every full window of every trace.

    A window is positive when its disk fails within ``lead_days`` of
    the window's last day — the same labeling the logistic predictor
    trains on.
    """
    rows: List[np.ndarray] = []
    labels: List[int] = []
    for trace in traces:
        if not trace.samples:
            continue
        last_day = trace.samples[-1].day
        for end in range(window_days - 1, last_day + 1):
            window = trace.window(end, window_days)
            if len(window) < window_days:
                continue
            rows.append(window_features(window))
            positive = (
                trace.will_fail and trace.failure_day - end <= lead_days
            )
            labels.append(1 if positive else 0)
    if not rows:
        raise ValueError("no training windows; traces too short?")
    return np.vstack(rows), np.array(labels, dtype=np.int64)


@dataclass
class _Node:
    """One CART node; a leaf when ``feature`` is None."""

    prediction: float  # positive-class fraction at this node
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_Node"] = None  # feature <= threshold
    right: Optional["_Node"] = None


def _gini(labels: np.ndarray) -> float:
    if len(labels) == 0:
        return 0.0
    p = labels.mean()
    return 2.0 * p * (1.0 - p)


class CartPredictor(FailurePredictor):
    """CART classifier over windowed SMART features.

    Args:
        window_days / lead_days: windowing and labeling, as for
            :class:`~repro.failure.predictor.LogisticPredictor`.
        max_depth: tree depth cap.
        min_samples_split: do not split smaller nodes.
        max_thresholds: candidate split thresholds per feature
            (quantile-sampled; bounds fit time on large fleets).
        decision_threshold: leaf positive-fraction cutoff for flagging.
    """

    def __init__(
        self,
        window_days: int = 7,
        lead_days: int = 10,
        max_depth: int = 5,
        min_samples_split: int = 40,
        max_thresholds: int = 16,
        decision_threshold: float = 0.8,
    ):
        self.window_days = window_days
        self.lead_days = lead_days
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_thresholds = max_thresholds
        self.decision_threshold = decision_threshold
        self._root: Optional[_Node] = None
        #: number of decision (non-leaf) nodes after fit
        self.num_splits = 0

    # -- training --------------------------------------------------------

    def fit(self, traces: Sequence[DiskTrace]) -> "CartPredictor":
        X, y = training_windows(traces, self.window_days, self.lead_days)
        if len(np.unique(y)) < 2:
            raise ValueError(
                "training fleet needs both failing and surviving disks"
            )
        # Balance classes by weighting positives up in the impurity
        # computation — implemented by oversampling indices, which keeps
        # the split code simple.
        pos = np.flatnonzero(y == 1)
        neg = np.flatnonzero(y == 0)
        factor = max(1, len(neg) // max(len(pos), 1) // 2)
        index = np.concatenate([neg] + [pos] * factor)
        self.num_splits = 0
        self._root = self._build(X[index], y[index], depth=0)
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(prediction=float(y.mean()) if len(y) else 0.0)
        if (
            depth >= self.max_depth
            or len(y) < self.min_samples_split
            or _gini(y) == 0.0
        ):
            return node
        best = self._best_split(X, y)
        if best is None:
            return node
        feature, threshold, _ = best
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        self.num_splits += 1
        return node

    def _best_split(
        self, X: np.ndarray, y: np.ndarray
    ) -> Optional[Tuple[int, float, float]]:
        parent = _gini(y)
        best: Optional[Tuple[int, float, float]] = None
        n = len(y)
        for feature in range(X.shape[1]):
            values = X[:, feature]
            candidates = np.unique(
                np.quantile(
                    values,
                    np.linspace(0.05, 0.95, self.max_thresholds),
                    method="nearest",
                )
            )
            for threshold in candidates:
                mask = values <= threshold
                left_n = int(mask.sum())
                if left_n == 0 or left_n == n:
                    continue
                impurity = (
                    left_n * _gini(y[mask]) + (n - left_n) * _gini(y[~mask])
                ) / n
                gain = parent - impurity
                if gain > 1e-12 and (best is None or gain > best[2]):
                    best = (feature, float(threshold), float(gain))
        return best

    # -- inference --------------------------------------------------------

    def score(self, window: Sequence[SmartSample]) -> float:
        if self._root is None:
            raise RuntimeError("predictor not fitted; call fit() first")
        x = window_features(window)
        node = self._root
        while node.feature is not None:
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node.prediction

    def predict(self, window: Sequence[SmartSample]) -> bool:
        if len(window) < self.window_days:
            return False
        return self.score(window) >= self.decision_threshold

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree."""

        def walk(node: Optional[_Node]) -> int:
            if node is None or node.feature is None:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise RuntimeError("predictor not fitted")
        return walk(self._root)
