"""Discrete-event simulation of repair plans."""

from .cost_model import CostModelSimulator, evaluate_plan
from .events import Acquire, Delay, Process, Release, Resource, Simulation, SimulationError, use
from .lifetime import (
    DiskEvent,
    LifetimeConfig,
    LifetimeReport,
    LifetimeResult,
    TraceReplayProcess,
    WeibullFailureProcess,
    durability_study,
    run_lifetime,
)
from .resources import DeviceMap, NodeDevices
from .simulator import (
    DeviceUtilization,
    RepairRateCalibration,
    RepairResult,
    RepairSimulator,
    ShardedRepairResult,
    calibrate_repair_rates,
    simulate_repair,
    simulate_sharded_repair,
)
from .timeline import (
    ClusterLifetime,
    EventKind,
    TimelineEvent,
    TimelineReport,
)
from .workload import (
    PAPER_SIM_CONFIG,
    SimulationConfig,
    build_cluster,
    build_cluster_with_stf,
    fixed_stf_chunk_count,
)

__all__ = [
    "Acquire",
    "ClusterLifetime",
    "CostModelSimulator",
    "DiskEvent",
    "EventKind",
    "LifetimeConfig",
    "LifetimeReport",
    "LifetimeResult",
    "TimelineEvent",
    "TimelineReport",
    "TraceReplayProcess",
    "WeibullFailureProcess",
    "evaluate_plan",
    "Delay",
    "DeviceMap",
    "DeviceUtilization",
    "NodeDevices",
    "PAPER_SIM_CONFIG",
    "Process",
    "Release",
    "RepairRateCalibration",
    "RepairResult",
    "RepairSimulator",
    "Resource",
    "ShardedRepairResult",
    "Simulation",
    "SimulationConfig",
    "SimulationError",
    "build_cluster",
    "build_cluster_with_stf",
    "calibrate_repair_rates",
    "durability_study",
    "fixed_stf_chunk_count",
    "run_lifetime",
    "simulate_repair",
    "simulate_sharded_repair",
    "use",
]
