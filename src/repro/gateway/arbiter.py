"""QoS arbitration between client, repair, and scrub traffic.

The testbed's NIC :class:`~repro.runtime.throttle.RateLimiter`s emulate
*capacity*; they are deliberately class-blind, so a repair storm that
keeps every NIC busy starves foreground GETs — exactly the failure mode
predictive repair exists to avoid (PAPER.md; cf. the client/repair
bandwidth arbitration in Zhou et al., arXiv:2011.01410).  The
:class:`TrafficArbiter` adds the missing policy layer: every throttled
transfer is classified by its message's ``TRAFFIC_CLASS`` attribute
(``"client"`` for gateway chunk ops, ``"repair"`` for
:class:`~repro.runtime.messages.DataPacket`, ``"scrub"`` for the
daemon's verification sweeps).  Background classes are charged against
per-class token buckets; the client class is *never delayed* — its
floor is enforced by pacing everyone else.

Invariants (DESIGN.md §15):

* client transfers are admitted with zero added latency, always —
  arbitration policy must not tax the traffic it exists to protect;
* while the client class is busy (a registered flow, or any client
  admit within :data:`BUSY_WINDOW`), the background classes together
  are paced to at most ``(1 - client_floor) * rate``, leaving the
  floor's worth of capacity to foreground traffic;
* the arbiter is *work-conserving*: an idle class lends its share to
  the busy ones, so repair runs at full line rate while the gateway
  is idle and scrub is quiet;
* admission never reorders within a class.

The arbiter sits *in front of* the NIC limiters (transports call
:meth:`TrafficArbiter.admit` before reserving NIC time), so capacity
emulation stays exact; the arbiter only decides *when* a background
transfer may start competing for the NIC.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Optional

#: every traffic class the arbiter knows about
CLASSES = ("client", "repair", "scrub")

#: class assumed for messages without a ``TRAFFIC_CLASS`` attribute
DEFAULT_CLASS = "repair"

#: a class with an admit in the last this-many seconds counts as busy
BUSY_WINDOW = 0.25


def traffic_class(message) -> str:
    """The arbitration class of a wire message (``TRAFFIC_CLASS``)."""
    cls = getattr(type(message), "TRAFFIC_CLASS", DEFAULT_CLASS)
    return cls if cls in CLASSES else DEFAULT_CLASS


class _ClassState:
    """Token bucket + activity tracking for one traffic class."""

    __slots__ = ("tokens", "last_refill", "last_seen", "flows")

    def __init__(self) -> None:
        self.tokens = 0.0
        self.last_refill = 0.0
        self.last_seen = float("-inf")
        self.flows = 0


class TrafficArbiter:
    """Token-based traffic classifier with a client bandwidth floor.

    Args:
        rate: shared link rate in bytes/second that the buckets refill
            against — normally the testbed's per-node NIC bandwidth.
            ``None`` or ``inf`` disables arbitration entirely.
        client_floor: fraction of ``rate`` withheld from background
            classes while the client class is busy (0 ≤ floor < 1).
        burst: bucket depth in bytes; a background class may burst
            this far ahead of its refill before admission starts
            delaying it.  Defaults to 0.1 s of line rate (min 256 KiB).
        metrics: optional :class:`~repro.obs.MetricsRegistry`; records
            ``arbiter_bytes_total`` / ``arbiter_wait_seconds`` /
            ``arbiter_active_flows``, all labeled by ``cls``.
        stop: optional shutdown event; a set event aborts any
            admission wait immediately.
    """

    def __init__(
        self,
        rate: Optional[float],
        client_floor: float = 0.5,
        burst: Optional[float] = None,
        metrics=None,
        stop: Optional[threading.Event] = None,
    ):
        if not 0.0 <= client_floor < 1.0:
            raise ValueError(
                f"client_floor must be in [0, 1), got {client_floor}"
            )
        self.rate = rate
        self.client_floor = client_floor
        if burst is None and rate is not None and rate != float("inf"):
            burst = max(rate * 0.1, 256 * 1024)
        self.burst = burst or 0.0
        self.stop = stop
        self._lock = threading.Lock()
        self._classes: Dict[str, _ClassState] = {
            cls: _ClassState() for cls in CLASSES
        }
        self._bytes = None
        self._wait = None
        self._flows = None
        if metrics is not None:
            self._bytes = metrics.counter(
                "arbiter_bytes_total",
                "bytes admitted per traffic class",
            )
            self._wait = metrics.histogram(
                "arbiter_wait_seconds",
                "admission delay imposed per transfer",
            )
            self._flows = metrics.gauge(
                "arbiter_active_flows",
                "registered flows per traffic class",
            )

    @property
    def disabled(self) -> bool:
        return self.rate is None or self.rate == float("inf")

    # ------------------------------------------------------------------
    # flow registration

    @contextmanager
    def register(self, cls: str):
        """Mark a flow of class ``cls`` active for the context's span.

        Repair sessions and the daemon wrap their work in this so the
        arbiter knows repair/scrub is contending even between packets,
        and gateway request handling registers client flows so the
        floor holds across a multi-stripe GET's think time.
        """
        if cls not in CLASSES:
            raise ValueError(f"unknown traffic class {cls!r}")
        with self._lock:
            self._classes[cls].flows += 1
            flows = self._classes[cls].flows
        if self._flows is not None:
            self._flows.set(flows, cls=cls)
        try:
            yield self
        finally:
            with self._lock:
                self._classes[cls].flows -= 1
                flows = self._classes[cls].flows
            if self._flows is not None:
                self._flows.set(flows, cls=cls)

    def active_flows(self, cls: str) -> int:
        with self._lock:
            return self._classes[cls].flows

    # ------------------------------------------------------------------
    # admission

    def admit(
        self,
        message,
        nbytes: int,
        stop: Optional[threading.Event] = None,
    ) -> float:
        """Admit a transfer; background classes sleep when over-share.

        Client-class transfers are admitted immediately (their arrival
        just marks the class busy, which clamps the background shares).
        Returns the admission delay imposed (seconds); the wait is
        interruptible by ``stop`` (or the arbiter's own stop event).
        """
        if self.disabled or nbytes <= 0:
            return 0.0
        cls = traffic_class(message)
        now = time.monotonic()
        if cls == "client":
            with self._lock:
                self._classes[cls].last_seen = now
            if self._bytes is not None:
                self._bytes.inc(nbytes, cls=cls)
                self._wait.observe(0.0, cls=cls)
            return 0.0
        with self._lock:
            state = self._classes[cls]
            refill_rate = self.rate * self._share(cls, now)
            if state.last_refill:
                state.tokens = min(
                    state.tokens + (now - state.last_refill) * refill_rate,
                    self.burst,
                )
            else:
                state.tokens = self.burst
            state.last_refill = now
            state.last_seen = now
            state.tokens -= nbytes
            wait = (
                -state.tokens / refill_rate if state.tokens < 0 else 0.0
            )
        if self._bytes is not None:
            self._bytes.inc(nbytes, cls=cls)
            self._wait.observe(wait, cls=cls)
        if wait > 0:
            event = stop or self.stop
            if event is not None:
                event.wait(timeout=wait)
            else:
                time.sleep(wait)
        return wait

    def _share(self, cls: str, now: float) -> float:
        """Effective rate share of background class ``cls`` (locked).

        The background classes split ``1 - client_floor`` evenly; an
        idle background class lends its split to the busy ones.  The
        client floor itself is only lent out while the client class is
        completely idle (no flows, no admit within
        :data:`BUSY_WINDOW`).
        """
        background = [c for c in CLASSES if c != "client"]
        split = (1.0 - self.client_floor) / len(background)
        busy = {
            c
            for c in background
            if c == cls
            or self._classes[c].flows > 0
            or now - self._classes[c].last_seen < BUSY_WINDOW
        }
        share = split + split * len(
            [c for c in background if c not in busy]
        ) / len(busy)
        client = self._classes["client"]
        client_busy = (
            client.flows > 0 or now - client.last_seen < BUSY_WINDOW
        )
        if not client_busy:
            share += self.client_floor / len(busy)
        return share
