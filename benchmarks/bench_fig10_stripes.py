"""Figure 10 / Experiment A.3: impact of the number of stripes.

Paper claims reproduced here:

* more stripes give Algorithm 1 more freedom, moving FastPR toward the
  optimum;
* from ~400 stripes on, FastPR is close to the optimum (paper: within
  15%; we assert a generous envelope since our simulator also charges
  the contention the closed form ignores).
"""

from conftest import run_once

from repro.bench.experiments import fig10_stripes

RUNS = 2


def test_fig10_stripes(benchmark, save_result):
    exp = run_once(benchmark, fig10_stripes, runs=RUNS)
    save_result(exp)

    for panel in exp.panels:
        fastpr = panel.values_of("fastpr")
        optimum = panel.values_of("optimum")
        ratios = [f / o for f, o in zip(fastpr, optimum)]
        # Optimum is a lower bound everywhere.
        assert min(ratios) >= 0.95
        # The few-stripes points are the farthest from optimal.
        assert ratios[0] >= min(ratios) - 1e-9
        # >= 400 stripes: near-optimal (generous envelope).
        for xtick, ratio in zip(panel.xticks, ratios):
            if int(xtick) >= 400:
                assert ratio < 1.7, (
                    f"{panel.title}@{xtick} stripes: FastPR {ratio:.2f}x optimum"
                )
