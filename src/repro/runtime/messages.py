"""Wire protocol of the coordinator/agent runtime (Section V).

The coordinator instructs agents with command messages; agents move
chunk data as packet messages and acknowledge completed repairs.  All
messages are small dataclasses delivered over the in-process transport;
only :class:`DataPacket` payloads are bandwidth-throttled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..cluster.chunk import NodeId, StripeId

#: identifies one chunk-repair action: (stripe, chunk index)
ActionKey = Tuple[StripeId, int]


@dataclass(frozen=True)
class ReceiveCommand:
    """Tell the destination agent to expect and assemble a chunk.

    The destination accumulates ``coeff * packet`` from every source —
    coefficient 1 from a single source is a migration; ``k`` erasure-
    coding coefficients implement streaming reconstruction decode.

    Attributes:
        stripe_id / chunk_index: the chunk being repaired.
        chunk_size: total bytes of the chunk.
        packet_size: packet granularity of the incoming transfers.
        sources: source node -> GF(2^8) coefficient.
    """

    stripe_id: StripeId
    chunk_index: int
    chunk_size: int
    packet_size: int
    sources: Dict[NodeId, int] = field(default_factory=dict)

    @property
    def key(self) -> ActionKey:
        return (self.stripe_id, self.chunk_index)


@dataclass(frozen=True)
class SendCommand:
    """Tell an agent to stream its locally stored chunk of a stripe.

    For migration the sender is the STF node sending the repaired
    chunk itself; for reconstruction the sender is a helper sending its
    own chunk of the same stripe.
    """

    stripe_id: StripeId
    #: the repaired chunk's index (names the assembly at the destination)
    chunk_index: int
    destination: NodeId
    packet_size: int


@dataclass(frozen=True)
class RelayCommand:
    """Tell a helper to act as one stage of a repair pipeline.

    The helper scales its own chunk of the stripe by ``coeff`` and
    forwards it packet-by-packet to ``destination`` (the next pipeline
    stage, or the repairing node).  Unless ``first`` is set, it waits
    for the upstream stage's partial-sum packet for each offset and
    XORs its own contribution into it before forwarding — the repair
    pipelining of Li et al. (ATC'17).
    """

    stripe_id: StripeId
    #: the repaired chunk's index (names the stream across hops)
    chunk_index: int
    destination: NodeId
    packet_size: int
    chunk_size: int
    coeff: int
    first: bool
    #: the upstream node (unset when first)
    upstream: NodeId = -1

    @property
    def key(self) -> ActionKey:
        return (self.stripe_id, self.chunk_index)


@dataclass(frozen=True)
class DataPacket:
    """One packet of chunk data in flight."""

    stripe_id: StripeId
    chunk_index: int
    source: NodeId
    offset: int
    payload: bytes

    @property
    def key(self) -> ActionKey:
        return (self.stripe_id, self.chunk_index)


@dataclass(frozen=True)
class RepairAck:
    """Destination -> coordinator: one chunk fully repaired."""

    stripe_id: StripeId
    chunk_index: int
    node_id: NodeId

    @property
    def key(self) -> ActionKey:
        return (self.stripe_id, self.chunk_index)


@dataclass(frozen=True)
class WriteComplete:
    """Destination -> source: the repaired chunk is durably written.

    Lets a sender run its chunk transfers as synchronous round trips —
    the next chunk's read only starts after the previous chunk is
    written at the destination, matching the sequential
    read->transmit->write decomposition of Eq. (4).
    """

    stripe_id: StripeId
    chunk_index: int

    @property
    def key(self) -> ActionKey:
        return (self.stripe_id, self.chunk_index)


@dataclass(frozen=True)
class Shutdown:
    """Coordinator -> agent: stop the dispatcher loop."""
