"""The binary frame codec: round trips and rejection paths.

Every runtime message must survive encode -> decode bit-exactly, and
every way a frame can lie (magic, version, type code, lengths, CRC,
schema) must raise :class:`~repro.net.wire.WireError` — the TCP server
drops the connection on any of them, so these paths are the protocol's
entire defense against corrupted or hostile byte streams.
"""

import json
import struct

import pytest

from repro.net.wire import (
    HEADER,
    MAGIC,
    MAX_META,
    WIRE_VERSION,
    WireError,
    decode_frame,
    encode_frame,
)
from repro.runtime.messages import (
    WIRE_CODES,
    WIRE_MESSAGES,
    ChunkDelete,
    ChunkRead,
    ChunkReadReply,
    ChunkWrite,
    ChunkWriteReply,
    DataPacket,
    DeleteReply,
    DeleteRequest,
    GetReply,
    GetRequest,
    Heartbeat,
    InventoryQuery,
    InventoryReply,
    Ping,
    Pong,
    PutReply,
    PutRequest,
    ReceiveCommand,
    RelayCommand,
    RepairAck,
    SendCommand,
    Shutdown,
    SlicePacket,
    SliceReport,
    StatReply,
    StatRequest,
    WriteComplete,
    nack,
)

#: one representative instance of every wire-registered message
SAMPLES = [
    ReceiveCommand(
        stripe_id=7,
        chunk_index=2,
        chunk_size=4096,
        packet_size=512,
        sources={3: 17, 9: 254},
        attempt=1,
        epoch=4,
    ),
    SendCommand(
        stripe_id=7, chunk_index=2, destination=5, packet_size=512,
        attempt=1, epoch=4,
    ),
    RelayCommand(
        stripe_id=7, chunk_index=2, destination=5, packet_size=512,
        chunk_size=4096, coeff=17, first=False, upstream=3, attempt=1,
        epoch=4,
    ),
    DataPacket(
        stripe_id=7, chunk_index=2, source=3, offset=1024,
        payload=bytes(range(256)) * 4, attempt=1, epoch=4,
        checksum=0xDEADBEEF,
    ),
    RepairAck(stripe_id=7, chunk_index=2, node_id=5, attempt=1, epoch=4),
    nack((7, 2), 5, attempt=1, detail="stale epoch 3 < 4", epoch=4),
    WriteComplete(stripe_id=7, chunk_index=2, attempt=1, epoch=4),
    Heartbeat(node_id=5),
    Ping(nonce=99),
    Pong(node_id=5, nonce=99),
    InventoryQuery(epoch=4, nonce=99),
    InventoryReply(node_id=5, epoch=4, nonce=99, stripes=(1, 7, 30)),
    Shutdown(),
    SlicePacket(
        stripe_id=7, chunk_index=2, source=3, offset=1024,
        payload=bytes(range(256)) * 2, attempt=1, epoch=4,
        checksum=0xDEADBEEF, slice_index=2, num_slices=8, chain_pos=1,
    ),
    SliceReport(
        stripe_id=7, chunk_index=2, node_id=5, slice_index=2,
        num_slices=8, attempt=1, epoch=4, elapsed=0.125,
    ),
    ChunkWrite(
        stripe_id=41, chunk_index=3, source=-1000, offset=0,
        payload=b"\x5a" * 1024, checksum=0xCAFE, nonce=12, reply_to=-1000,
    ),
    ChunkWriteReply(stripe_id=41, chunk_index=3, node_id=5, nonce=12),
    ChunkRead(stripe_id=41, chunk_index=3, nonce=13, reply_to=-1000),
    ChunkReadReply(
        stripe_id=41, chunk_index=3, source=5, offset=0,
        payload=b"\xa5" * 1024, checksum=0xBEEF, nonce=13,
    ),
    ChunkDelete(stripe_id=41, chunk_index=3, nonce=14, reply_to=-1000),
    PutRequest(
        stripe_id=-1, chunk_index=-1, source=-1001, offset=0,
        payload=b"object bytes", key="videos/cat.mp4", nonce=15,
        reply_to=-1001,
    ),
    PutReply(
        key="videos/cat.mp4", nonce=15, size=12, stripes=(41, 42),
    ),
    GetRequest(key="videos/cat.mp4", nonce=16, reply_to=-1001),
    GetReply(
        stripe_id=-1, chunk_index=-1, source=-1000, offset=0,
        payload=b"object bytes", key="videos/cat.mp4", nonce=16,
        degraded=True,
    ),
    DeleteRequest(key="videos/cat.mp4", nonce=17, reply_to=-1001),
    DeleteReply(key="videos/cat.mp4", nonce=17),
    StatRequest(key="videos/cat.mp4", nonce=18, reply_to=-1001),
    StatReply(
        key="videos/cat.mp4", nonce=18, size=12, chunk_size=4096,
        scheme="rs(9,6)", stripes=(41, 42),
    ),
]


class TestRoundTrip:
    def test_every_message_type_has_a_sample(self):
        assert {type(s) for s in SAMPLES} == set(WIRE_MESSAGES.values())

    @pytest.mark.parametrize(
        "message", SAMPLES, ids=[type(s).__name__ for s in SAMPLES]
    )
    def test_bit_exact_round_trip(self, message):
        src, dst, decoded = decode_frame(encode_frame(3, -1, message))
        assert (src, dst) == (3, -1)
        assert decoded == message
        assert type(decoded) is type(message)

    def test_payload_travels_raw_not_base64(self):
        packet = DataPacket(
            stripe_id=1, chunk_index=0, source=2, offset=0,
            payload=b"\x00\xff" * 512,
        )
        frame = encode_frame(2, 4, packet)
        assert packet.payload in frame  # verbatim binary tail
        meta_len = HEADER.unpack(frame[: HEADER.size])[4]
        meta = json.loads(frame[HEADER.size : HEADER.size + meta_len])
        assert "payload" not in meta["msg"]

    def test_header_carries_the_message_epoch(self):
        frame = encode_frame(0, 1, WriteComplete(1, 0, epoch=9))
        assert HEADER.unpack(frame[: HEADER.size])[3] == 9
        # epoch-less messages stamp 0
        frame = encode_frame(0, 1, Heartbeat(node_id=0))
        assert HEADER.unpack(frame[: HEADER.size])[3] == 0

    def test_empty_payload_packet(self):
        src, dst, decoded = decode_frame(
            encode_frame(0, 1, DataPacket(1, 0, 0, 0, b""))
        )
        assert decoded.payload == b""

    def test_unregistered_message_rejected_at_encode(self):
        with pytest.raises(WireError, match="not a wire-registered"):
            encode_frame(0, 1, object())

    def test_type_codes_are_stable(self):
        # Renumbering breaks cross-version interop: pin the assignment.
        assert {
            code: cls.WIRE_NAME for code, cls in sorted(WIRE_CODES.items())
        } == {
            1: "receive", 2: "send", 3: "relay", 4: "data",
            5: "repair_ack", 6: "write_complete", 7: "heartbeat",
            8: "ping", 9: "pong", 10: "inventory_query",
            11: "inventory_reply", 12: "shutdown", 13: "slice",
            14: "slice_report", 15: "chunk_write",
            16: "chunk_write_reply", 17: "chunk_read",
            18: "chunk_read_reply", 19: "chunk_delete",
            20: "put_request", 21: "put_reply", 22: "get_request",
            23: "get_reply", 24: "delete_request", 25: "delete_reply",
            26: "stat_request", 27: "stat_reply",
        }


def _mangle(frame: bytes, **header_overrides) -> bytes:
    """Re-pack the header with some fields overridden (body untouched)."""
    fields = list(HEADER.unpack(frame[: HEADER.size]))
    names = ["magic", "version", "code", "epoch", "meta_len", "payload_len",
             "crc"]
    for name, value in header_overrides.items():
        fields[names.index(name)] = value
    return HEADER.pack(*fields) + frame[HEADER.size :]


class TestRejection:
    def frame(self):
        return encode_frame(0, 1, Pong(node_id=1, nonce=5))

    def test_bad_magic(self):
        with pytest.raises(WireError, match="magic"):
            decode_frame(_mangle(self.frame(), magic=b"HTTP"))

    def test_future_version(self):
        with pytest.raises(WireError, match="version"):
            decode_frame(_mangle(self.frame(), version=WIRE_VERSION + 1))

    def test_unknown_type_code(self):
        with pytest.raises(WireError, match="unknown message type"):
            decode_frame(_mangle(self.frame(), code=999))

    def test_absurd_meta_length(self):
        with pytest.raises(WireError, match="meta length"):
            decode_frame(_mangle(self.frame(), meta_len=MAX_META + 1))

    def test_flipped_body_bit_fails_crc(self):
        frame = bytearray(self.frame())
        frame[HEADER.size + 3] ^= 0x01
        with pytest.raises(WireError, match="CRC"):
            decode_frame(bytes(frame))

    def test_flipped_payload_bit_fails_crc(self):
        frame = bytearray(
            encode_frame(0, 1, DataPacket(1, 0, 0, 0, b"abcdef"))
        )
        frame[-2] ^= 0x80
        with pytest.raises(WireError, match="CRC"):
            decode_frame(bytes(frame))

    def test_truncated_frame(self):
        with pytest.raises(WireError, match="length mismatch"):
            decode_frame(self.frame()[:-3])

    def test_trailing_garbage(self):
        with pytest.raises(WireError, match="length mismatch"):
            decode_frame(self.frame() + b"xx")

    def test_short_buffer(self):
        with pytest.raises(WireError, match="short frame"):
            decode_frame(b"FPR1")

    def test_type_code_and_envelope_must_agree(self):
        # Valid CRC, valid JSON — but the header says Ping while the
        # body is a Pong: the schema's unknown-key rejection fires.
        frame = self.frame()
        ping_code = Ping.WIRE_CODE
        mangled = _mangle(frame, code=ping_code)
        with pytest.raises(WireError):
            decode_frame(mangled)

    def test_unknown_envelope_key_rejected(self):
        import zlib

        meta = json.dumps({
            "version": 1, "src": 0, "dst": 1, "msg": Ping(nonce=1).to_dict(),
            "evil": True,
        }).encode()
        header = HEADER.pack(
            MAGIC, WIRE_VERSION, Ping.WIRE_CODE, 0, len(meta), 0,
            zlib.crc32(meta),
        )
        with pytest.raises(WireError):
            decode_frame(header + meta)

    def test_payload_on_payloadless_message_rejected(self):
        import zlib

        meta = json.dumps({
            "version": 1, "src": 0, "dst": 1, "msg": Ping(nonce=1).to_dict(),
        }).encode()
        payload = b"sneaky"
        crc = zlib.crc32(payload, zlib.crc32(meta))
        header = HEADER.pack(
            MAGIC, WIRE_VERSION, Ping.WIRE_CODE, 0, len(meta), len(payload),
            crc,
        )
        with pytest.raises(WireError, match="carries no payload"):
            decode_frame(header + meta + payload)


class TestJsonMangling:
    """JSON stringifies dict keys and lists tuples; coerce hooks undo it."""

    def test_receive_sources_keys_back_to_int(self):
        cmd = ReceiveCommand(1, 0, 64, 16, sources={10: 3, 11: 250})
        _, _, decoded = decode_frame(encode_frame(0, 1, cmd))
        assert decoded.sources == {10: 3, 11: 250}
        assert all(isinstance(k, int) for k in decoded.sources)

    def test_inventory_stripes_back_to_tuple(self):
        reply = InventoryReply(node_id=1, epoch=2, nonce=3, stripes=(5, 6))
        _, _, decoded = decode_frame(encode_frame(1, -1, reply))
        assert decoded.stripes == (5, 6)
        assert isinstance(decoded.stripes, tuple)
