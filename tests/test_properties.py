"""Cross-cutting property-based tests (hypothesis).

These complement the per-module suites with whole-system invariants on
randomized inputs: codec interchangeability, snapshot round-trips,
plan/simulator consistency, and rebalance monotonicity.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import (
    FastPRPlanner,
    MigrationOnlyPlanner,
    ReconstructionOnlyPlanner,
    make_codec,
)
from repro.cluster import Rebalancer, StorageCluster, placement_balance
from repro.cluster import snapshot as snapshot_mod
from repro.core import apply_plan
from repro.sim import evaluate_plan

relaxed = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestCodecInterchangeability:
    """All codecs satisfy the same ErasureCodec contract."""

    @relaxed
    @given(st.integers(0, 2**32 - 1), st.sampled_from(
        ["rs(5,3)", "rs(9,6)", "lrc(6,2,2)", "msr(6,3)"]
    ))
    def test_encode_decode_contract(self, seed, scheme):
        codec = make_codec(scheme)
        rng = np.random.default_rng(seed)
        size = 4 * (codec.k - 1) * codec.k  # divisible for MSR's alpha
        data = [
            rng.integers(0, 256, size, dtype=np.uint8).tobytes()
            for _ in range(codec.k)
        ]
        coded = codec.encode(data)
        assert len(coded) == codec.n
        assert all(len(c) == size for c in coded)
        # Knock out the maximum tolerable losses from the tail and
        # rebuild them from the survivors.
        lost = list(range(codec.n - (codec.n - codec.k), codec.n))
        available = {i: coded[i] for i in range(codec.n) if i not in lost}
        rebuilt = codec.decode(available, lost)
        for i in lost:
            assert rebuilt[i] == coded[i]

    @relaxed
    @given(st.sampled_from(["rs(9,6)", "lrc(6,2,2)", "msr(6,3)"]))
    def test_repair_cost_within_bounds(self, scheme):
        codec = make_codec(scheme)
        cost = codec.single_repair_cost()
        assert 1 <= cost.helpers <= codec.n - 1
        assert 0 < cost.traffic_chunks <= codec.k


class TestSnapshotProperties:
    @relaxed
    @given(
        st.integers(6, 20),
        st.integers(0, 30),
        st.integers(0, 3),
        st.integers(0, 2**16),
    )
    def test_roundtrip_any_cluster(self, nodes, stripes, standby, seed):
        cluster = StorageCluster.random(
            nodes, stripes, 5, 3, num_hot_standby=standby, seed=seed
        )
        restored = snapshot_mod.from_dict(snapshot_mod.to_dict(cluster))
        assert restored.num_stripes == cluster.num_stripes
        assert restored.metadata_version >= 0
        for sid in range(cluster.num_stripes):
            assert restored.stripe(sid).placement == cluster.stripe(sid).placement


class TestPlanningProperties:
    @relaxed
    @given(st.integers(0, 2**16), st.sampled_from(["fastpr", "recon", "mig"]))
    def test_any_planner_full_lifecycle(self, seed, which):
        cluster = StorageCluster.random(
            14, 40, 5, 3, num_hot_standby=2, seed=seed
        )
        stf = max(cluster.storage_node_ids(), key=cluster.load_of)
        cluster.node(stf).mark_soon_to_fail()
        planner = {
            "fastpr": FastPRPlanner(seed=0),
            "recon": ReconstructionOnlyPlanner(seed=0),
            "mig": MigrationOnlyPlanner(),
        }[which]
        plan = planner.plan(cluster, stf)
        plan.validate(cluster)
        result = evaluate_plan(cluster, plan)
        # Cost-model total is the sum of per-round times...
        assert result.total_time == pytest.approx(sum(result.round_times))
        # ...and all traffic accounting is consistent.
        assert result.bytes_written == plan.total_chunks * cluster.chunk_size
        apply_plan(cluster, plan)
        assert cluster.load_of(stf) == 0
        cluster.verify_fault_tolerance()

    @relaxed
    @given(st.integers(0, 2**16))
    def test_fastpr_never_slower_than_both_baselines(self, seed):
        cluster = StorageCluster.random(20, 80, 5, 3, seed=seed)
        stf = max(cluster.storage_node_ids(), key=cluster.load_of)
        cluster.node(stf).mark_soon_to_fail()
        times = {}
        for planner in (
            FastPRPlanner(seed=0),
            ReconstructionOnlyPlanner(seed=0),
            MigrationOnlyPlanner(),
        ):
            plan = planner.plan(cluster, stf)
            times[planner.name] = evaluate_plan(cluster, plan).total_time
        # "nearest" c_m rounding lets migration straggle a round by up
        # to t_m/2, so FastPR may exceed reconstruction-only by a few
        # percent on unlucky set structures (hypothesis found one at
        # seed=896); it is never materially slower.
        assert times["fastpr"] <= times["reconstruction"] * 1.05
        assert times["fastpr"] <= times["migration"] * 1.05


class TestRebalanceProperties:
    @relaxed
    @given(st.integers(0, 2**16))
    def test_rebalance_never_increases_spread(self, seed):
        cluster = StorageCluster.random(10, 30, 4, 2, seed=seed)
        before = placement_balance(cluster)
        Rebalancer(seed=seed).run(cluster)
        after = placement_balance(cluster)
        assert after <= before + 1e-9
        cluster.verify_fault_tolerance()
