"""Tests for the on-disk chunk store."""

import pytest

from repro.runtime.datanode import ChunkStore
from repro.runtime.throttle import RateLimiter


@pytest.fixture
def store(tmp_path):
    return ChunkStore(tmp_path / "node_0", 0, RateLimiter(None))


class TestChunkStore:
    def test_put_and_read(self, store):
        store.put(3, b"hello world")
        assert store.read(3) == b"hello world"
        assert store.size(3) == 11
        assert store.has(3)

    def test_missing_chunk(self, store):
        assert not store.has(9)
        with pytest.raises(KeyError):
            store.size(9)

    def test_read_packet(self, store):
        store.put(1, bytes(range(100)))
        assert store.read_packet(1, 10, 5) == bytes(range(10, 15))

    def test_short_read_raises(self, store):
        store.put(1, b"abc")
        with pytest.raises(IOError):
            store.read_packet(1, 0, 10)

    def test_write_packet_assembles_out_of_order(self, store):
        store.write_packet(7, 4, b"WORL", 8)
        store.write_packet(7, 0, b"HELO", 8)
        assert store.read(7) == b"HELOWORL"
        assert store.size(7) == 8

    def test_delete(self, store):
        store.put(2, b"x")
        store.delete(2)
        assert not store.has(2)
        store.delete(2)  # idempotent

    def test_stripes_listing(self, store):
        store.put(5, b"a")
        store.write_packet(9, 0, b"b", 1)
        assert store.stripes() == [5, 9]

    def test_throttled_io_charges_disk(self, tmp_path):
        disk = RateLimiter(1e9)
        store = ChunkStore(tmp_path / "n", 0, disk)
        store.put(0, b"x" * 100, throttled=True)
        store.read_packet(0, 0, 50)
        assert disk.bytes_total == 150
