"""The storage-cluster metadata model.

:class:`StorageCluster` is the coordinator's view of the cluster: the
set of nodes (storage and hot-standby), every stripe's placement, and
the queries the FastPR algorithms need — which chunks an STF node
stores, which healthy nodes can serve as reconstruction helpers for a
stripe, and which nodes may receive a repaired chunk without breaking
node-level fault tolerance.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .chunk import ChunkLocation, NodeId, Stripe, StripeCatalog, StripeId
from .node import Node, NodeRole, NodeState


class ClusterError(RuntimeError):
    """Raised on invalid cluster mutations or queries."""


class StorageCluster:
    """Metadata for a cluster of ``M`` storage nodes plus optional
    hot-standby nodes, storing erasure-coded stripes.

    Args:
        num_nodes: number of regular storage nodes (the paper's ``M``).
        num_hot_standby: dedicated hot-standby nodes (the paper's ``h``).
        disk_bandwidth: default per-node disk bandwidth, bytes/s (``bd``).
        network_bandwidth: default per-node NIC bandwidth, bytes/s (``bn``).
        chunk_size: chunk size in bytes (``c``).
    """

    def __init__(
        self,
        num_nodes: int,
        num_hot_standby: int = 0,
        disk_bandwidth: float = 100e6,
        network_bandwidth: float = 125e6,
        chunk_size: int = 64 * 1024 * 1024,
    ):
        if num_nodes < 2:
            raise ValueError(f"need at least 2 storage nodes, got {num_nodes}")
        if num_hot_standby < 0:
            raise ValueError("num_hot_standby must be non-negative")
        self.disk_bandwidth = float(disk_bandwidth)
        self.network_bandwidth = float(network_bandwidth)
        self.chunk_size = int(chunk_size)
        self.nodes: Dict[NodeId, Node] = {}
        for node_id in range(num_nodes):
            self.nodes[node_id] = Node(node_id)
        for offset in range(num_hot_standby):
            node_id = num_nodes + offset
            self.nodes[node_id] = Node(node_id, role=NodeRole.HOT_STANDBY)
        self.catalog = StripeCatalog()
        self._next_stripe_id = 0
        #: bumped on every placement mutation; lets caches (e.g. the
        #: precomputed reconstruction sets of Section IV-D) invalidate
        self.metadata_version = 0
        # node id -> set of stripe ids with a chunk there (storage index)
        self._node_index: Dict[NodeId, Set[StripeId]] = {
            node_id: set() for node_id in self.nodes
        }

    # ------------------------------------------------------------------
    # Node queries
    # ------------------------------------------------------------------

    @property
    def num_storage_nodes(self) -> int:
        """The paper's ``M``: storage nodes regardless of health."""
        return sum(1 for n in self.nodes.values() if n.role is NodeRole.STORAGE)

    @property
    def num_hot_standby(self) -> int:
        return sum(1 for n in self.nodes.values() if n.is_standby)

    def storage_node_ids(self) -> List[NodeId]:
        return sorted(
            n.node_id for n in self.nodes.values() if n.role is NodeRole.STORAGE
        )

    def hot_standby_ids(self) -> List[NodeId]:
        return sorted(n.node_id for n in self.nodes.values() if n.is_standby)

    def healthy_storage_nodes(
        self, exclude: Iterable[NodeId] = ()
    ) -> List[NodeId]:
        """Healthy storage nodes, minus ``exclude`` (e.g. the STF node)."""
        excluded = set(exclude)
        return sorted(
            n.node_id
            for n in self.nodes.values()
            if n.role is NodeRole.STORAGE
            and n.state is NodeState.HEALTHY
            and n.node_id not in excluded
        )

    def node(self, node_id: NodeId) -> Node:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise ClusterError(f"unknown node {node_id}") from None

    def stf_nodes(self) -> List[NodeId]:
        """Nodes currently flagged soon-to-fail."""
        return sorted(n.node_id for n in self.nodes.values() if n.is_stf)

    # ------------------------------------------------------------------
    # Stripe management
    # ------------------------------------------------------------------

    def add_stripe(
        self, n: int, k: int, placement: Sequence[NodeId]
    ) -> Stripe:
        """Register a stripe with an explicit placement."""
        for node_id in placement:
            if node_id not in self.nodes:
                raise ClusterError(f"placement references unknown node {node_id}")
            if self.nodes[node_id].is_standby:
                raise ClusterError(
                    f"cannot place stripe chunk on hot-standby node {node_id}"
                )
        stripe = Stripe(self._next_stripe_id, n, k, placement)
        self.catalog.add(stripe)
        self._next_stripe_id += 1
        for node_id in placement:
            self._node_index[node_id].add(stripe.stripe_id)
        self.metadata_version += 1
        return stripe

    def stripe(self, stripe_id: StripeId) -> Stripe:
        try:
            return self.catalog[stripe_id]
        except KeyError:
            raise ClusterError(f"unknown stripe {stripe_id}") from None

    @property
    def num_stripes(self) -> int:
        return len(self.catalog)

    def stripes(self) -> Iterable[Stripe]:
        return iter(self.catalog)

    # ------------------------------------------------------------------
    # Queries used by the repair algorithms
    # ------------------------------------------------------------------

    def chunks_on_node(self, node_id: NodeId) -> List[ChunkLocation]:
        """Chunk locations currently stored on ``node_id``.

        This is the paper's set :math:`C` when ``node_id`` is the STF
        node (the chunks that predictive repair must restore).
        """
        if node_id not in self.nodes:
            raise ClusterError(f"unknown node {node_id}")
        locations = []
        for stripe_id in sorted(self._node_index[node_id]):
            stripe = self.catalog[stripe_id]
            locations.append(
                ChunkLocation(stripe_id, stripe.chunk_index_on(node_id), node_id)
            )
        return locations

    def load_of(self, node_id: NodeId) -> int:
        """Number of chunks stored on a node."""
        return len(self._node_index[node_id])

    def helper_nodes(
        self, stripe_id: StripeId, exclude: Iterable[NodeId] = ()
    ) -> List[NodeId]:
        """Healthy nodes storing a chunk of the stripe, minus ``exclude``.

        These are the candidate reconstruction helpers for a chunk of
        this stripe (the ``n - 1`` surviving chunk holders).
        """
        excluded = set(exclude)
        stripe = self.stripe(stripe_id)
        return sorted(
            node_id
            for node_id in stripe.nodes
            if node_id not in excluded
            and self.nodes[node_id].state is not NodeState.FAILED
        )

    def eligible_destinations(
        self, stripe_id: StripeId, exclude: Iterable[NodeId] = ()
    ) -> List[NodeId]:
        """Healthy storage nodes that store *no* chunk of the stripe.

        Placing the repaired chunk on any of them preserves the
        node-level fault tolerance (Fig. 4(c) of the paper).
        """
        excluded = set(exclude)
        stripe = self.stripe(stripe_id)
        return [
            node_id
            for node_id in self.healthy_storage_nodes(exclude=excluded)
            if not stripe.stores_on(node_id)
        ]

    def verify_fault_tolerance(self) -> None:
        """Assert every stripe occupies distinct, known nodes.

        Raises:
            ClusterError: on any violation (duplicated node within a
                stripe, or chunk on a failed node).
        """
        for stripe in self.catalog:
            seen: Set[NodeId] = set()
            for node_id in stripe.placement:
                if node_id in seen:
                    raise ClusterError(
                        f"stripe {stripe.stripe_id} stores two chunks on "
                        f"node {node_id}"
                    )
                seen.add(node_id)
                if node_id not in self.nodes:
                    raise ClusterError(
                        f"stripe {stripe.stripe_id} references unknown node "
                        f"{node_id}"
                    )

    # ------------------------------------------------------------------
    # Mutations performed by repair
    # ------------------------------------------------------------------

    def relocate_chunk(
        self, stripe_id: StripeId, chunk_index: int, new_node: NodeId
    ) -> None:
        """Record that a chunk now lives on ``new_node``.

        Used both by migration (chunk copied off the STF node) and by
        reconstruction (chunk decoded onto the destination).
        """
        stripe = self.stripe(stripe_id)
        old_node = stripe.node_of(chunk_index)
        if new_node == old_node:
            return
        if new_node not in self.nodes:
            raise ClusterError(f"unknown destination node {new_node}")
        stripe.relocate(chunk_index, new_node)
        self._node_index[old_node].discard(stripe_id)
        self._node_index[new_node].add(stripe_id)
        self.metadata_version += 1

    def decommission(self, node_id: NodeId) -> None:
        """Remove a (repaired, now chunk-free) node from service."""
        if self._node_index[node_id]:
            raise ClusterError(
                f"node {node_id} still stores {len(self._node_index[node_id])} "
                "stripes; repair it first"
            )
        self.nodes[node_id].mark_failed()

    def promote_standby(self, node_id: NodeId) -> None:
        """Turn a hot-standby node into a regular storage node.

        Hot-standby repair ends with the standby nodes taking over the
        STF node's service (Section II-C).
        """
        node = self.node(node_id)
        if not node.is_standby:
            raise ClusterError(f"node {node_id} is not a hot standby")
        node.role = NodeRole.STORAGE

    def add_hot_standby(self, count: int = 1) -> List[NodeId]:
        """Provision ``count`` fresh hot-standby nodes.

        Operators replace consumed standbys after a hot-standby repair
        promotes them into service; ids continue after the current
        maximum.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        added = []
        next_id = max(self.nodes) + 1
        for offset in range(count):
            node_id = next_id + offset
            self.nodes[node_id] = Node(node_id, role=NodeRole.HOT_STANDBY)
            self._node_index[node_id] = set()
            added.append(node_id)
        return added

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def random(
        cls,
        num_nodes: int,
        num_stripes: int,
        n: int,
        k: int,
        num_hot_standby: int = 0,
        seed: Optional[int] = None,
        disk_bandwidth: float = 100e6,
        network_bandwidth: float = 125e6,
        chunk_size: int = 64 * 1024 * 1024,
    ) -> "StorageCluster":
        """Build a cluster with ``num_stripes`` randomly placed stripes.

        Mirrors the paper's simulation setup: "randomly distribute
        1,000 stripes of chunks across the storage cluster".
        """
        if n > num_nodes:
            raise ValueError(
                f"stripe width n={n} exceeds cluster size M={num_nodes}"
            )
        rng = random.Random(seed)
        cluster = cls(
            num_nodes,
            num_hot_standby=num_hot_standby,
            disk_bandwidth=disk_bandwidth,
            network_bandwidth=network_bandwidth,
            chunk_size=chunk_size,
        )
        node_ids = cluster.storage_node_ids()
        for _ in range(num_stripes):
            placement = rng.sample(node_ids, n)
            cluster.add_stripe(n, k, placement)
        return cluster

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StorageCluster(M={self.num_storage_nodes}, "
            f"h={self.num_hot_standby}, stripes={self.num_stripes})"
        )
