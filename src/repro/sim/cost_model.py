"""The paper's own simulator: compute round times from the cost model.

Section VI-A: "we remove all the actual operations of disk I/Os and
network transmission from the prototype, and simulate the operations by
computing their execution times based on the input network and disk
bandwidths."  Concretely, a round that reconstructs ``c_r`` chunks and
migrates ``c_m`` chunks takes

    max(c_m * t_m,  t_r(G = c_r))

with ``t_m`` from Eq. (4) and ``t_r`` from Eq. (5)/(6).  Like the
paper's analysis, this deliberately ignores the cross-method
interference the Section III modeling assumptions list (e.g. standby
nodes ingesting migration and reconstruction traffic at once).

The event-driven :class:`~repro.sim.simulator.RepairSimulator` charges
that contention and is kept as an ablation — `benchmarks/
bench_ablation_contention.py` quantifies the difference.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..cluster.chunk import NodeId
from ..cluster.cluster import StorageCluster
from ..core.analysis import AnalyticalModel, BandwidthProfile
from ..core.plan import RepairPlan, RepairScenario
from ..core.planner import profile_from_cluster
from .simulator import RepairResult


class CostModelSimulator:
    """Evaluates a repair plan with the Section III cost model.

    Args:
        cluster: supplies M, h, bandwidths and the chunk size.
        profile: bandwidth override (defaults to the cluster's).
        k_prime: repair fan-in override for repair-efficient codes.
        link_scales: per-node NIC bandwidth scales in (0, 1] — the
            same numbers :meth:`~repro.runtime.faults.FaultPlan.\
link_bandwidths` feeds the runtime's chain ordering.  A *chained*
            (pipelined) round streams through every helper link in
            series, so its network term is divided by the slowest
            involved link's scale; the star-topology paths keep the
            paper's uniform-bandwidth model.  ``None``/empty leaves
            every time unchanged.
    """

    def __init__(
        self,
        cluster: StorageCluster,
        profile: Optional[BandwidthProfile] = None,
        k_prime: Optional[int] = None,
        link_scales: Optional[Dict[NodeId, float]] = None,
    ):
        self.cluster = cluster
        self.profile = profile or profile_from_cluster(cluster)
        self.k_prime = k_prime
        self.link_scales = link_scales or {}

    def run(self, plan: RepairPlan) -> RepairResult:
        """Compute the plan's repair time and traffic."""
        chunk = self.profile.chunk_size
        hot_standby = None
        if plan.scenario is RepairScenario.HOT_STANDBY:
            hot_standby = self.cluster.num_hot_standby
        round_times = []
        bytes_read = bytes_transferred = bytes_written = 0
        for round_ in plan.rounds:
            t_round = 0.0
            if round_.reconstructions:
                k = self._round_k(round_)
                model = AnalyticalModel(
                    num_nodes=self.cluster.num_storage_nodes,
                    k=k,
                    profile=self.profile,
                    hot_standby=hot_standby,
                    k_prime=self.k_prime,
                )
                fanin = model.repair_fanin
                if all(a.pipelined for a in round_.reconstructions):
                    # Repair pipelining: the destination ingests one
                    # chunk's worth instead of k — per chunk the cost
                    # collapses to read + transfer + write (plus a
                    # per-hop packet drain the model neglects).  The
                    # chain streams through every helper link in
                    # series, so the slowest involved link throttles
                    # the whole transfer.
                    p = self.profile
                    net = p.network_time / self._round_scale(round_)
                    t_round = p.disk_time + net + p.disk_time
                    if hot_standby is not None:
                        t_round = p.disk_time + (
                            round_.cr / hot_standby
                        ) * (net + p.disk_time)
                else:
                    t_round = model.reconstruction_time(groups=round_.cr)
                bytes_read += round_.cr * fanin * chunk
                bytes_transferred += round_.cr * fanin * chunk
                bytes_written += round_.cr * chunk
            if round_.migrations:
                t_m = self._migration_model().migration_time()
                t_round = max(t_round, round_.cm * t_m)
                bytes_read += round_.cm * chunk
                bytes_transferred += round_.cm * chunk
                bytes_written += round_.cm * chunk
            round_times.append(t_round)
        return RepairResult(
            total_time=sum(round_times),
            round_times=round_times,
            chunks_repaired=plan.total_chunks,
            bytes_read=bytes_read,
            bytes_transferred=bytes_transferred,
            bytes_written=bytes_written,
        )

    def _round_scale(self, round_) -> float:
        """Slowest link scale touched by the round's chained repairs."""
        if not self.link_scales:
            return 1.0
        involved = set()
        for action in round_.reconstructions:
            involved.update(action.sources)
            involved.add(action.destination)
        return min(
            (self.link_scales.get(node, 1.0) for node in involved),
            default=1.0,
        )

    def _round_k(self, round_) -> int:
        ks = {
            self.cluster.stripe(a.stripe_id).k for a in round_.reconstructions
        }
        if len(ks) != 1:
            raise ValueError(f"mixed k values in one round: {sorted(ks)}")
        return ks.pop()

    def _migration_model(self) -> AnalyticalModel:
        # t_m only needs the profile; k is irrelevant but required.
        return AnalyticalModel(
            num_nodes=self.cluster.num_storage_nodes,
            k=1,
            profile=self.profile,
        )


def evaluate_plan(
    cluster: StorageCluster,
    plan: RepairPlan,
    profile: Optional[BandwidthProfile] = None,
    k_prime: Optional[int] = None,
    link_scales: Optional[Dict[NodeId, float]] = None,
) -> RepairResult:
    """One-call convenience wrapper around :class:`CostModelSimulator`."""
    return CostModelSimulator(
        cluster, profile=profile, k_prime=k_prime, link_scales=link_scales
    ).run(plan)
