"""The shared serialization protocol every to_dict/from_dict rides on."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.serde import Schema, SerdeError


FIELDS = ("alpha", "beta", "gamma")


def make_schema(**kwargs) -> Schema:
    return Schema("test-doc", version=2, fields=FIELDS, **kwargs)


class TestSchema:
    def test_dump_stamps_version(self):
        assert make_schema().dump({"alpha": 1}) == {"version": 2, "alpha": 1}

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.dictionaries(
            st.sampled_from(FIELDS),
            st.one_of(st.integers(), st.text(), st.none()),
        )
    )
    def test_load_dump_round_trip(self, body):
        schema = make_schema()
        assert schema.load(schema.dump(body)) == body

    def test_version_mismatch_rejected(self):
        with pytest.raises(SerdeError, match="version 1"):
            make_schema().load({"version": 1, "alpha": 0})

    def test_missing_version_rejected_by_default(self):
        with pytest.raises(SerdeError, match="version None"):
            make_schema().load({"alpha": 0})

    def test_implicit_version_accepts_unstamped_documents(self):
        schema = Schema(
            "legacy", version=1, fields=FIELDS, implicit_version=1
        )
        assert schema.load({"alpha": 3}) == {"alpha": 3}

    def test_unknown_keys_rejected_by_name(self):
        with pytest.raises(SerdeError, match="delta"):
            make_schema().load({"version": 2, "delta": 1})

    def test_missing_required_keys_rejected(self):
        schema = make_schema(required=("alpha",))
        with pytest.raises(SerdeError, match="alpha"):
            schema.load({"version": 2, "beta": 1})

    def test_non_mapping_rejected(self):
        with pytest.raises(SerdeError, match="mapping"):
            make_schema().load([1, 2])

    def test_custom_error_type(self):
        schema = make_schema(error=TypeError)
        with pytest.raises(TypeError, match="unknown"):
            schema.load({"version": 2, "nope": 1})

    def test_reserved_version_field_rejected_at_definition(self):
        with pytest.raises(ValueError, match="reserved"):
            Schema("bad", version=1, fields=("version",))

    def test_required_must_be_subset_of_fields(self):
        with pytest.raises(ValueError, match="required"):
            Schema("bad", version=1, fields=("a",), required=("b",))


class TestPortedSchemas:
    """The four pre-existing formats all ride on Schema now."""

    def test_runtime_config_round_trip(self):
        from repro.runtime import RuntimeConfig

        cfg = RuntimeConfig(ack_timeout=1.5, max_retries=2)
        assert RuntimeConfig.from_dict(cfg.to_dict()) == cfg

    def test_fault_plan_keeps_legacy_error_contract(self):
        from repro.runtime import FaultPlan

        plan = FaultPlan.from_dict(FaultPlan(seed=3).to_dict())
        assert plan.seed == 3
        with pytest.raises(TypeError, match="coordinator_crashs"):
            FaultPlan.from_dict({"coordinator_crashs": []})

    def test_snapshot_keeps_legacy_error_contract(self, small_cluster):
        from repro.cluster import snapshot as snapshot_mod

        doc = snapshot_mod.to_dict(small_cluster)
        restored = snapshot_mod.from_dict(doc)
        assert snapshot_mod.to_dict(restored) == doc
        with pytest.raises(snapshot_mod.SnapshotError, match="version"):
            snapshot_mod.from_dict({**doc, "version": 99})

    def test_repair_plan_round_trip(self, stf_cluster):
        from repro.core.plan import RepairPlan
        from repro.core.planner import FastPRPlanner

        cluster, stf = stf_cluster
        plan = FastPRPlanner(seed=1).plan(cluster, stf)
        assert RepairPlan.from_dict(plan.to_dict()).to_dict() == plan.to_dict()
