"""Smoke tests for the experiment functions (small scales).

The full paper-scale sweeps live in ``benchmarks/``; here we verify the
machinery itself: structure of results, qualitative invariants, and the
helper utilities, at configurations that run in seconds.
"""

import pytest

# NOTE: `testbed_point` and `TestbedConfig` are imported via the module
# to keep pytest from collecting them as tests/fixtures by name.
from repro.bench import experiments as exps
from repro.bench.experiments import (
    ALL_EXPERIMENTS,
    fig2_math_scattered,
    fig3_math_hotstandby,
    fig15_microbench,
    sim_group_size,
    simulate_point,
)
from repro.core.plan import RepairScenario
from repro.sim.workload import SimulationConfig


class TestRegistry:
    def test_every_figure_present(self):
        expected = {
            "fig2",
            "fig3",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
        }
        assert expected <= set(ALL_EXPERIMENTS)


class TestAnalysisFigures:
    def test_fig2_structure(self):
        exp = fig2_math_scattered()
        assert exp.experiment_id == "fig2"
        assert len(exp.panels) == 4
        for panel in exp.panels:
            assert {s.label for s in panel.series} == {"predictive", "reactive"}

    def test_fig3_structure(self):
        exp = fig3_math_hotstandby()
        assert len(exp.panels) == 2


class TestSimulatePoint:
    def test_ordering_invariant(self):
        cfg = SimulationConfig(
            num_nodes=30, num_stripes=100, seed=3
        )
        point = simulate_point(cfg, RepairScenario.SCATTERED, runs=1)
        assert point["optimum"] <= point["fastpr"] * 1.01
        assert point["fastpr"] <= point["reconstruction"] * 1.05
        assert point["migration"] >= point["fastpr"]

    def test_exclude_migration(self):
        cfg = SimulationConfig(num_nodes=30, num_stripes=80, seed=4)
        point = simulate_point(
            cfg, RepairScenario.SCATTERED, runs=1, include_migration=False
        )
        assert "migration" not in point

    def test_group_size_heuristic(self):
        assert sim_group_size(100, 6) == 64
        assert sim_group_size(20, 6) == 24  # floor at 24


class TestTestbedPoint:
    def test_small_testbed_point(self):
        config = exps.TestbedConfig(
            num_nodes=12,
            stf_chunks=4,
            extra_stripes=8,
            chunk_size=128 * 1024,
            packet_size=32 * 1024,
            disk_bandwidth=200e6,
            network_bandwidth=880e6,
        )
        point = exps.testbed_point(config, RepairScenario.SCATTERED, runs=1)
        assert set(point) == {"fastpr", "reconstruction", "migration"}
        assert all(v > 0 for v in point.values())


class TestFig15:
    def test_tiny_sweep(self):
        exp = fig15_microbench(sizes=(10, 20), runs=1)
        reductions = exp.panel(
            "Fig 15(a) — reduction of d_opt over d_ini"
        ).values_of("reduction")
        assert len(reductions) == 2
        assert all(r >= 0 for r in reductions)
        times = exp.panel(
            "Fig 15(b) — running time of Algorithm 1"
        ).values_of("algorithm1")
        assert all(t >= 0 for t in times)
