#!/usr/bin/env python3
"""Months of cluster life: alarms, repairs, turnover, rebalancing.

Runs the same 120-day disk-telemetry horizon against two repair
strategies — FastPR and migration-only — and compares the cumulative
repair time (the cluster's total window of vulnerability).

Run:
    python examples/cluster_lifetime.py
"""

from repro.cluster import StorageCluster
from repro.failure import LogisticPredictor, SmartTraceGenerator
from repro.sim import ClusterLifetime, EventKind


def run_strategy(planner: str, seed: int = 90):
    num_nodes = 24
    cluster = StorageCluster.random(
        num_nodes, 100, 9, 6, num_hot_standby=3, seed=seed
    )
    traces = SmartTraceGenerator(
        num_nodes, horizon_days=120, annual_failure_rate=0.6, seed=seed
    ).generate()
    history = SmartTraceGenerator(
        300, horizon_days=120, annual_failure_rate=0.25, seed=seed + 1
    ).generate()
    predictor = LogisticPredictor(seed=0).fit(history)
    lifetime = ClusterLifetime(
        cluster,
        traces,
        predictor,
        planner=planner,
        rebalance_every=14,
        group_size=48,
        seed=0,
    )
    return lifetime.run()


def main() -> None:
    reports = {}
    for planner in ("fastpr", "migration"):
        report = reports[planner] = run_strategy(planner)
        print(f"=== strategy: {planner} ===")
        for event in report.events:
            if event.kind is EventKind.REBALANCE:
                print(f"  day {event.day:3d}: rebalanced ({event.moves} moves)")
                continue
            lead = (
                "false alarm"
                if event.kind is EventKind.PREDICTIVE_REPAIR
                and event.lead_days is None
                else (
                    f"{event.lead_days}d lead"
                    if event.kind is EventKind.PREDICTIVE_REPAIR
                    else "no warning"
                )
            )
            print(
                f"  day {event.day:3d}: {event.kind.value:17s} node "
                f"{event.node_id:2d} — {event.chunks} chunks in "
                f"{event.repair_time:6.0f}s ({lead})"
            )
        print(f"  {report.summary()}\n")

    fast = reports["fastpr"].total_repair_time
    slow = reports["migration"].total_repair_time
    if slow > 0:
        print(
            f"FastPR spent {fast:.0f}s repairing over the horizon vs "
            f"{slow:.0f}s for migration-only — a "
            f"{1 - fast / slow:.0%} smaller window of vulnerability."
        )


if __name__ == "__main__":
    main()
