"""Tests for cluster snapshots."""

import json

import pytest

from repro.cluster import StorageCluster
from repro.cluster.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotError,
    from_dict,
    load,
    save,
    to_dict,
)


@pytest.fixture
def cluster():
    c = StorageCluster.random(
        10,
        20,
        5,
        3,
        num_hot_standby=2,
        seed=17,
        disk_bandwidth=123.0,
        network_bandwidth=456.0,
        chunk_size=789,
    )
    c.node(3).mark_soon_to_fail()
    c.node(7).disk_bandwidth = 999.0
    return c


class TestRoundTrip:
    def test_dict_roundtrip_preserves_everything(self, cluster):
        restored = from_dict(to_dict(cluster))
        assert restored.num_storage_nodes == cluster.num_storage_nodes
        assert restored.num_hot_standby == cluster.num_hot_standby
        assert restored.chunk_size == cluster.chunk_size
        assert restored.disk_bandwidth == cluster.disk_bandwidth
        for sid in range(cluster.num_stripes):
            assert restored.stripe(sid).placement == cluster.stripe(sid).placement
        assert restored.node(3).is_stf
        assert restored.node(7).disk_bandwidth == 999.0

    def test_file_roundtrip(self, cluster, tmp_path):
        path = tmp_path / "cluster.json"
        save(cluster, path)
        restored = load(path)
        assert restored.num_stripes == cluster.num_stripes
        assert json.loads(path.read_text())["version"] == SNAPSHOT_VERSION

    def test_failed_nodes_survive(self, cluster, tmp_path):
        # Drain node 0 first (decommission requires it to be empty).
        for chunk in cluster.chunks_on_node(0):
            dest = cluster.eligible_destinations(chunk.stripe_id, exclude={0})[0]
            cluster.relocate_chunk(chunk.stripe_id, chunk.chunk_index, dest)
        cluster.decommission(0)
        restored = from_dict(to_dict(cluster))
        assert restored.node(0).is_failed


class TestValidation:
    def test_bad_version(self, cluster):
        doc = to_dict(cluster)
        doc["version"] = 99
        with pytest.raises(SnapshotError, match="version"):
            from_dict(doc)

    def test_missing_section(self, cluster):
        doc = to_dict(cluster)
        del doc["stripes"]
        with pytest.raises(SnapshotError, match="missing"):
            from_dict(doc)

    def test_sparse_node_ids(self, cluster):
        doc = to_dict(cluster)
        doc["nodes"][0]["node_id"] = 100
        with pytest.raises(SnapshotError, match="dense"):
            from_dict(doc)

    def test_corrupt_placement_caught(self, cluster):
        doc = to_dict(cluster)
        doc["stripes"][0]["placement"][1] = doc["stripes"][0]["placement"][0]
        with pytest.raises(ValueError):
            from_dict(doc)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SnapshotError, match="invalid JSON"):
            load(path)
