"""Section III: mathematical analysis of predictive repair.

Implements Equations (1)-(6) of the paper verbatim:

* Eq. (4): per-chunk migration time
  ``t_m = c/b_d + c/b_n + c/b_d``;
* Eq. (5): per-chunk reconstruction time, scattered repair
  ``t_r = c/b_d + k*c/b_n + c/b_d``;
* Eq. (6): per-chunk reconstruction time, hot-standby repair
  ``t_r = c/b_d + G*k*c/(h*b_n) + G*c/(h*b_d)``;
* Eq. (1): ``T(x) = max(x*t_m, (U-x)/G * t_r)``;
* Eq. (2): optimal predictive time ``T_P = U*t_r*t_m / (G*t_m + t_r)``;
* Eq. (3): reactive time ``T_R = U*t_r/G``.

The LRC extension (Section III, last paragraph) is supported by the
``k_prime`` parameter: substitute ``G' <= (M-1)/k'`` and ``k'`` into
the equations.

Bandwidths are bytes/second and the chunk size is bytes; the module
exposes :func:`mb_per_s`, :func:`gbit_per_s` and :func:`mib` helpers to
write configurations in the paper's units.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


def mb_per_s(x: float) -> float:
    """Megabytes/second -> bytes/second (the paper's disk unit)."""
    return x * 1e6


def gbit_per_s(x: float) -> float:
    """Gigabits/second -> bytes/second (the paper's network unit)."""
    return x * 1e9 / 8.0


def mib(x: float) -> int:
    """Mebibytes -> bytes (chunk sizes: 64 MB chunks are 64 MiB)."""
    return int(x * 1024 * 1024)


@dataclass(frozen=True)
class BandwidthProfile:
    """Cluster resource parameters of the analysis (Section III).

    Attributes:
        chunk_size: chunk size ``c`` in bytes.
        disk_bandwidth: per-node disk bandwidth ``b_d`` in bytes/s.
        network_bandwidth: per-node network bandwidth ``b_n`` in bytes/s.
    """

    chunk_size: int = mib(64)
    disk_bandwidth: float = mb_per_s(100)
    network_bandwidth: float = gbit_per_s(1)

    def __post_init__(self):
        if self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if self.disk_bandwidth <= 0 or self.network_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")

    def with_(self, **kwargs) -> "BandwidthProfile":
        """Return a copy with some fields replaced."""
        return replace(self, **kwargs)

    @property
    def disk_time(self) -> float:
        """Time to read or write one chunk from/to disk, c/b_d."""
        return self.chunk_size / self.disk_bandwidth

    @property
    def network_time(self) -> float:
        """Time to move one chunk over one NIC, c/b_n."""
        return self.chunk_size / self.network_bandwidth


#: Default configuration of the paper's analysis (Section III):
#: M=100, U=1000, c=64MB, b_d=100MB/s, b_n=1Gb/s, RS(9,6), h=3.
PAPER_DEFAULT_PROFILE = BandwidthProfile()


@dataclass(frozen=True)
class AnalyticalModel:
    """Closed-form repair-time model for one STF node.

    Args:
        num_nodes: cluster size ``M`` (storage nodes incl. the STF one).
        k: reconstruction fan-in of the code (RS: ``k``).
        profile: bandwidth/chunk-size parameters.
        hot_standby: number of hot-standby nodes ``h``; ``None`` selects
            the scattered-repair equations.
        k_prime: repair fan-in override for repair-efficient codes
            (LRC: ``k/l``; MSR: ``d``); defaults to ``k``.
        traffic_fraction: fraction of a chunk each helper transmits.
            1.0 for RS and LRC (helpers send whole chunks); ``1/α``
            for MSR codes whose helpers send one sub-symbol (the
            paper's "amount of repair traffic is less than the total
            size of k chunks" family).
    """

    num_nodes: int
    k: int
    profile: BandwidthProfile = PAPER_DEFAULT_PROFILE
    hot_standby: Optional[int] = None
    k_prime: Optional[int] = None
    traffic_fraction: float = 1.0

    def __post_init__(self):
        if self.num_nodes < 2:
            raise ValueError("need at least two nodes")
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.hot_standby is not None and self.hot_standby < 1:
            raise ValueError("hot_standby must be >= 1 when set")
        if self.k_prime is not None and self.k_prime < 1:
            raise ValueError("k_prime must be >= 1 when set")
        if not 0 < self.traffic_fraction <= 1:
            raise ValueError("traffic_fraction must be in (0, 1]")

    @property
    def repair_fanin(self) -> int:
        """Chunks read per reconstruction: k, or k' for LRC-style codes."""
        return self.k_prime if self.k_prime is not None else self.k

    @classmethod
    def for_codec(
        cls,
        codec,
        num_nodes: int,
        profile: BandwidthProfile = PAPER_DEFAULT_PROFILE,
        hot_standby: Optional[int] = None,
    ) -> "AnalyticalModel":
        """Model parameterized by a codec's single-repair cost.

        Works for RS (k helpers, k chunks of traffic), LRC (k' = k/l
        both) and MSR (d helpers, d/α chunks of traffic).
        """
        cost = codec.single_repair_cost()
        return cls(
            num_nodes=num_nodes,
            k=codec.k,
            profile=profile,
            hot_standby=hot_standby,
            k_prime=cost.helpers,
            traffic_fraction=cost.traffic_chunks / cost.helpers,
        )

    @property
    def is_hot_standby(self) -> bool:
        return self.hot_standby is not None

    def max_groups(self) -> int:
        """Maximum parallel reconstruction groups G = floor((M-1)/k')."""
        groups = (self.num_nodes - 1) // self.repair_fanin
        if groups < 1:
            raise ValueError(
                f"cluster too small: M-1={self.num_nodes - 1} < k={self.repair_fanin}"
            )
        return groups

    # -- Eq. (4) -------------------------------------------------------
    def migration_time(self) -> float:
        """Per-chunk migration time t_m (read + transmit + write)."""
        p = self.profile
        return p.disk_time + p.network_time + p.disk_time

    # -- Eq. (5)/(6) ---------------------------------------------------
    def reconstruction_time(self, groups: Optional[int] = None) -> float:
        """Per-round reconstruction time t_r for ``groups`` parallel groups.

        For scattered repair t_r does not depend on the number of
        groups (Eq. 5); for hot-standby repair the standby nodes'
        ingest makes it grow with G (Eq. 6).
        """
        p = self.profile
        traffic = self.repair_fanin * self.traffic_fraction
        if not self.is_hot_standby:
            return p.disk_time + traffic * p.network_time + p.disk_time
        G = self.max_groups() if groups is None else groups
        h = self.hot_standby
        return (
            p.disk_time
            + (G * traffic / h) * p.network_time
            + (G / h) * p.disk_time
        )

    # -- Eq. (1) -------------------------------------------------------
    def total_time(self, x: float, total_chunks: float) -> float:
        """T(x): repair time when ``x`` chunks migrate and the rest
        reconstruct, both running in parallel."""
        if not 0 <= x <= total_chunks:
            raise ValueError(f"x={x} outside [0, U={total_chunks}]")
        G = self.max_groups()
        t_m = self.migration_time()
        t_r = self.reconstruction_time()
        return max(x * t_m, (total_chunks - x) / G * t_r)

    def optimal_migration_chunks(self, total_chunks: float) -> float:
        """The x that minimizes T(x): x = U*t_r / (G*t_m + t_r)."""
        G = self.max_groups()
        t_m = self.migration_time()
        t_r = self.reconstruction_time()
        return total_chunks * t_r / (G * t_m + t_r)

    # -- Eq. (2) -------------------------------------------------------
    def predictive_time(self, total_chunks: float) -> float:
        """Optimal predictive repair time T_P = U*t_r*t_m/(G*t_m + t_r)."""
        G = self.max_groups()
        t_m = self.migration_time()
        t_r = self.reconstruction_time()
        return total_chunks * t_r * t_m / (G * t_m + t_r)

    # -- Eq. (3) -------------------------------------------------------
    def reactive_time(self, total_chunks: float) -> float:
        """Reactive (reconstruction-only) repair time T_R = U*t_r/G."""
        G = self.max_groups()
        return total_chunks * self.reconstruction_time() / G

    def migration_only_time(self, total_chunks: float) -> float:
        """Migration-only repair time U * t_m (sequential off one node)."""
        return total_chunks * self.migration_time()

    # -- per-chunk views (what the paper's figures plot) ----------------
    def predictive_time_per_chunk(self) -> float:
        """T_P / U — independent of U."""
        return self.predictive_time(1.0)

    def reactive_time_per_chunk(self) -> float:
        """T_R / U — independent of U."""
        return self.reactive_time(1.0)

    def migration_only_time_per_chunk(self) -> float:
        return self.migration_time()

    def reduction_over_reactive(self) -> float:
        """Fractional repair-time reduction of predictive vs reactive.

        The paper quotes e.g. 33.1% for RS(16,12) scattered and 41.3%
        for h=3 hot-standby.
        """
        reactive = self.reactive_time_per_chunk()
        predictive = self.predictive_time_per_chunk()
        return 1.0 - predictive / reactive
