"""Disk-failure prediction substrate: SMART traces, predictors, monitor."""

from .monitor import ClusterFailureMonitor, MissedFailure, MonitorReport, StfEvent
from .reliability import (
    ReliabilityConfig,
    VulnerabilityReport,
    chunk_completion_times,
    compare_predictive_vs_reactive,
    estimate_vulnerability,
)
from .cart import CartPredictor, training_windows
from .traces_io import TraceFormatError, load_traces, save_traces
from .predictor import (
    FailurePredictor,
    LogisticPredictor,
    PredictionMetrics,
    ThresholdPredictor,
    evaluate,
    first_alarm_day,
    window_features,
)
from .smart import (
    DEGRADATION_ATTRIBUTES,
    SMART_ATTRIBUTES,
    DiskTrace,
    SmartSample,
    SmartTraceGenerator,
    daily_samples,
)

__all__ = [
    "CartPredictor",
    "ClusterFailureMonitor",
    "training_windows",
    "DEGRADATION_ATTRIBUTES",
    "DiskTrace",
    "FailurePredictor",
    "LogisticPredictor",
    "MissedFailure",
    "MonitorReport",
    "PredictionMetrics",
    "ReliabilityConfig",
    "SMART_ATTRIBUTES",
    "VulnerabilityReport",
    "chunk_completion_times",
    "compare_predictive_vs_reactive",
    "estimate_vulnerability",
    "SmartSample",
    "SmartTraceGenerator",
    "StfEvent",
    "ThresholdPredictor",
    "TraceFormatError",
    "daily_samples",
    "load_traces",
    "save_traces",
    "evaluate",
    "first_alarm_day",
    "window_features",
]
