"""Galois-field GF(2^8) arithmetic.

This module provides the finite-field arithmetic that underlies every
erasure code in this repository, playing the role that Jerasure v1.2
plays in the paper's C++ prototype.

The field is GF(2^8) built from the primitive polynomial
``x^8 + x^4 + x^3 + x^2 + 1`` (0x11D), the same polynomial used by
Jerasure's default GF(2^8) implementation and by most storage-oriented
Reed-Solomon codecs.  Elements are integers in ``[0, 255]``; addition is
XOR, and multiplication is implemented with log/antilog tables so that
both scalar and vectorized (numpy) operations are cheap.

Two API levels are exposed:

* scalar helpers (:func:`gf_add`, :func:`gf_mul`, :func:`gf_div`,
  :func:`gf_pow`, :func:`gf_inv`) for matrix construction and tests, and
* vectorized helpers (:func:`gf_mul_bytes`, :func:`gf_addmul_bytes`)
  used on whole chunk buffers by the codecs.
"""

from __future__ import annotations

import threading

import numpy as np

#: Primitive polynomial for GF(2^8): x^8 + x^4 + x^3 + x^2 + 1.
PRIMITIVE_POLY = 0x11D

#: Order of the multiplicative group of GF(2^8).
GF_ORDER = 255

#: Field size.
GF_SIZE = 256


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    """Build the antilog (exp) and log tables for GF(2^8).

    Returns a pair ``(exp_table, log_table)`` where ``exp_table`` has
    512 entries (doubled to avoid a modulo in multiplication) and
    ``log_table`` has 256 entries with ``log_table[0]`` unused.
    """
    exp_table = np.zeros(2 * GF_ORDER + 2, dtype=np.int32)
    log_table = np.zeros(GF_SIZE, dtype=np.int32)
    x = 1
    for i in range(GF_ORDER):
        exp_table[i] = x
        log_table[x] = i
        x <<= 1
        if x & 0x100:
            x ^= PRIMITIVE_POLY
    # Duplicate so that exp_table[log_a + log_b] never needs "% 255".
    for i in range(GF_ORDER, 2 * GF_ORDER + 2):
        exp_table[i] = exp_table[i - GF_ORDER]
    return exp_table, log_table


_EXP, _LOG = _build_tables()

# A full 256x256 multiplication table.  64 KiB of int16 is a trivial
# memory cost and turns vectorized chunk multiplication into a single
# fancy-indexing operation.
_MUL_TABLE = np.zeros((GF_SIZE, GF_SIZE), dtype=np.uint8)
for _a in range(1, GF_SIZE):
    for _b in range(1, GF_SIZE):
        _MUL_TABLE[_a, _b] = _EXP[_LOG[_a] + _LOG[_b]]
del _a, _b

_INV_TABLE = np.zeros(GF_SIZE, dtype=np.uint8)
for _a in range(1, GF_SIZE):
    _INV_TABLE[_a] = _EXP[GF_ORDER - _LOG[_a]]
del _a


def gf_add(a: int, b: int) -> int:
    """Return ``a + b`` in GF(2^8) (carry-less, i.e. XOR)."""
    return a ^ b


def gf_sub(a: int, b: int) -> int:
    """Return ``a - b`` in GF(2^8); identical to addition."""
    return a ^ b


def gf_mul(a: int, b: int) -> int:
    """Return ``a * b`` in GF(2^8)."""
    if a == 0 or b == 0:
        return 0
    return int(_EXP[_LOG[a] + _LOG[b]])


def gf_div(a: int, b: int) -> int:
    """Return ``a / b`` in GF(2^8).

    Raises:
        ZeroDivisionError: if ``b`` is zero.
    """
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(2^8)")
    if a == 0:
        return 0
    return int(_EXP[_LOG[a] - _LOG[b] + GF_ORDER])


def gf_inv(a: int) -> int:
    """Return the multiplicative inverse of ``a`` in GF(2^8).

    Raises:
        ZeroDivisionError: if ``a`` is zero.
    """
    if a == 0:
        raise ZeroDivisionError("zero has no inverse in GF(2^8)")
    return int(_INV_TABLE[a])


def gf_pow(a: int, exponent: int) -> int:
    """Return ``a ** exponent`` in GF(2^8) (exponent may be negative)."""
    if exponent == 0:
        return 1
    if a == 0:
        if exponent < 0:
            raise ZeroDivisionError("zero has no inverse in GF(2^8)")
        return 0
    log_a = int(_LOG[a])
    return int(_EXP[(log_a * exponent) % GF_ORDER])


def gf_exp(power: int) -> int:
    """Return the field generator raised to ``power``."""
    return int(_EXP[power % GF_ORDER])


def gf_log(a: int) -> int:
    """Return the discrete log of ``a`` (base: field generator).

    Raises:
        ValueError: if ``a`` is zero (log of zero is undefined).
    """
    if a == 0:
        raise ValueError("log of zero is undefined in GF(2^8)")
    return int(_LOG[a])


# -- vectorized chunk kernels ------------------------------------------
#
# The hot path multiplies whole chunk buffers by one coefficient.  A
# plain 256-entry lookup (``_MUL_TABLE[coeff][data]``) gathers one byte
# per index; gathering two bytes at a time through a per-coefficient
# 65536-entry uint16 table roughly halves the index traffic and is
# ~2.5x faster on large buffers.  The pairing is endian-agnostic: the
# composed table maps (low byte, high byte) independently, which is
# exactly what viewing the same memory as uint16 does on any platform.

#: below this many bytes the uint16 table's setup overhead loses to
#: the plain byte-wise gather
_U16_MIN_BYTES = 4096

_PAIR_TABLES: dict = {}
_PAIR_LOCK = threading.Lock()


def _pair_table(coeff: int) -> np.ndarray:
    """The 65536-entry paired multiplication table for ``coeff``.

    Built lazily (≈3 ms, 128 KiB) and cached forever: a codec uses a
    small, fixed set of coefficients for the lifetime of the process.
    """
    table = _PAIR_TABLES.get(coeff)
    if table is None:
        with _PAIR_LOCK:
            table = _PAIR_TABLES.get(coeff)
            if table is None:
                mc = _MUL_TABLE[coeff].astype(np.uint16)
                idx = np.arange(1 << 16, dtype=np.uint32)
                table = (mc[idx & 0xFF] | (mc[idx >> 8] << 8)).astype(
                    np.uint16
                )
                _PAIR_TABLES[coeff] = table
    return table


_TLS = threading.local()


def _scratch(nbytes: int) -> np.ndarray:
    """A reusable thread-local uint8 buffer of at least ``nbytes``."""
    buf = getattr(_TLS, "buf", None)
    if buf is None or buf.size < nbytes:
        buf = np.empty(max(nbytes, 1 << 16), dtype=np.uint8)
        _TLS.buf = buf
    return buf[:nbytes]


def _flat_u16_view(array: np.ndarray, even: int) -> np.ndarray:
    return array.reshape(-1)[:even].view(np.uint16)


def _apply_mul(coeff: int, data: np.ndarray, out: np.ndarray) -> None:
    """``out[...] = coeff * data`` for coeff >= 2; handles aliasing."""
    n = data.size
    fast = (
        n >= _U16_MIN_BYTES
        and data.flags.c_contiguous
        and out.flags.c_contiguous
    )
    if not fast:
        # Cold path (tiny or strided buffers): byte-wise gather through
        # a temporary — also alias-safe, since the gather allocates.
        out[...] = _MUL_TABLE[coeff][data]
        return
    even = n & ~1
    d16 = _flat_u16_view(data, even)
    if np.shares_memory(data, out):
        # np.take may not buffer when indices alias the output; route
        # through the thread-local scratch instead of allocating.
        tmp = _scratch(even).view(np.uint16)
        np.take(_pair_table(coeff), d16, out=tmp)
        _flat_u16_view(out, even)[...] = tmp
    else:
        np.take(_pair_table(coeff), d16, out=_flat_u16_view(out, even))
    if n & 1:
        out.reshape(-1)[even:] = _MUL_TABLE[coeff][data.reshape(-1)[even:]]


def gf_mul_bytes(
    coeff: int, data: np.ndarray, out: np.ndarray = None
) -> np.ndarray:
    """Multiply every byte of ``data`` by the scalar ``coeff``.

    Args:
        coeff: field element in [0, 255].
        data: a ``uint8`` numpy array (any shape).
        out: optional preallocated ``uint8`` array of the same shape;
            may alias ``data`` (in-place scaling).

    Returns:
        ``out`` if given, else a new ``uint8`` array of the same shape.
    """
    if not 0 <= coeff < GF_SIZE:
        raise ValueError(f"coefficient {coeff} outside GF(2^8)")
    if out is None:
        out = np.empty_like(data)
    elif out.shape != data.shape or out.dtype != np.uint8:
        raise ValueError(
            f"out has shape {out.shape}/{out.dtype}, "
            f"expected {data.shape}/uint8"
        )
    if coeff == 0:
        out[...] = 0
    elif coeff == 1:
        if out is not data:
            np.copyto(out, data)
    else:
        _apply_mul(coeff, data, out)
    return out


def gf_addmul_bytes(acc: np.ndarray, coeff: int, data: np.ndarray) -> None:
    """In place, set ``acc ^= coeff * data`` byte-wise over GF(2^8).

    This is the inner loop of erasure encoding/decoding: accumulate a
    scaled source buffer into a destination parity buffer.  The scaled
    product lands in a reusable thread-local scratch buffer, so the
    call allocates nothing on the hot path.
    """
    if not 0 <= coeff < GF_SIZE:
        raise ValueError(f"coefficient {coeff} outside GF(2^8)")
    if coeff == 0:
        return
    if coeff == 1:
        np.bitwise_xor(acc, data, out=acc)
        return
    if acc.size >= _U16_MIN_BYTES and data.flags.c_contiguous:
        scaled = _scratch(data.size).reshape(data.shape)
        _apply_mul(coeff, data, scaled)
        np.bitwise_xor(acc, scaled, out=acc)
    else:
        np.bitwise_xor(acc, _MUL_TABLE[coeff][data], out=acc)


def gf_matmul_bytes(
    matrix: np.ndarray, shards: np.ndarray, out: np.ndarray = None
) -> np.ndarray:
    """Multiply a GF(2^8) coefficient ``matrix`` by a stack of shards.

    Args:
        matrix: ``(r, s)`` uint8 array of coefficients.
        shards: ``(s, L)`` uint8 array: ``s`` source buffers of ``L`` bytes.
        out: optional preallocated ``(r, L)`` uint8 output (must not
            alias ``shards``); zeroed and accumulated into.

    Returns:
        ``(r, L)`` uint8 array: each output row is the GF-linear
        combination of the input shards given by the matrix row.
    """
    matrix = np.asarray(matrix, dtype=np.uint8)
    shards = np.asarray(shards, dtype=np.uint8)
    if matrix.ndim != 2 or shards.ndim != 2:
        raise ValueError("matrix and shards must both be 2-D")
    if matrix.shape[1] != shards.shape[0]:
        raise ValueError(
            f"shape mismatch: matrix {matrix.shape} x shards {shards.shape}"
        )
    rows, _ = matrix.shape
    shape = (rows, shards.shape[1])
    if out is None:
        out = np.empty(shape, dtype=np.uint8)
    elif out.shape != shape or out.dtype != np.uint8:
        raise ValueError(
            f"out has shape {out.shape}/{out.dtype}, expected {shape}/uint8"
        )
    elif np.shares_memory(out, shards):
        raise ValueError("out must not alias shards")
    for r in range(rows):
        acc = out[r]
        row = matrix[r]
        # Seed the accumulator with the first non-zero term (saves one
        # full-width memset + XOR pass per row), then accumulate.
        first = -1
        for s in range(row.size):
            if row[s]:
                first = s
                break
        if first < 0:
            acc[...] = 0
            continue
        gf_mul_bytes(int(row[first]), shards[first], out=acc)
        for s in range(first + 1, row.size):
            gf_addmul_bytes(acc, int(row[s]), shards[s])
    return out
