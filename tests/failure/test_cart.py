"""Tests for the CART disk-failure predictor."""

import numpy as np
import pytest

from repro.failure.cart import CartPredictor, training_windows
from repro.failure.predictor import LogisticPredictor, evaluate
from repro.failure.smart import DiskTrace, SmartSample, SmartTraceGenerator


@pytest.fixture(scope="module")
def fleet():
    return SmartTraceGenerator(
        400, horizon_days=120, annual_failure_rate=0.25, seed=111
    ).generate()


def flat_trace(disk_id=0, days=20, level=0.0):
    trace = DiskTrace(disk_id=disk_id)
    for day in range(days):
        trace.samples.append(
            SmartSample(
                disk_id,
                day,
                {
                    "smart_5_reallocated_sectors": level,
                    "smart_187_reported_uncorrectable": 0.0,
                    "smart_188_command_timeout": 0.0,
                    "smart_197_pending_sectors": 0.0,
                    "smart_198_offline_uncorrectable": 0.0,
                    "smart_194_temperature": 30.0,
                    "smart_9_power_on_hours": 100.0,
                },
            )
        )
    return trace


class TestTrainingWindows:
    def test_shapes_and_labels(self, fleet):
        X, y = training_windows(fleet[:20], window_days=7, lead_days=10)
        assert X.shape[0] == len(y)
        assert X.shape[1] == 10
        assert set(np.unique(y)) <= {0, 1}

    def test_short_traces_rejected(self):
        with pytest.raises(ValueError):
            training_windows([flat_trace(days=2)], window_days=7, lead_days=10)


class TestCart:
    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            CartPredictor().score(flat_trace().window(6, 7))

    def test_requires_both_classes(self):
        healthy = [flat_trace(disk_id=i, days=30) for i in range(4)]
        with pytest.raises(ValueError):
            CartPredictor().fit(healthy)

    def test_learns_synthetic_fleet(self, fleet):
        train, test = fleet[:250], fleet[250:]
        predictor = CartPredictor().fit(train)
        metrics = evaluate(predictor, test)
        assert metrics.recall >= 0.85
        assert metrics.precision >= 0.85
        assert metrics.false_alarm_rate <= 0.08

    def test_tree_structure_bounded(self, fleet):
        predictor = CartPredictor(max_depth=4).fit(fleet[:150])
        assert predictor.depth <= 4
        assert predictor.num_splits >= 1

    def test_healthy_disk_not_flagged(self, fleet):
        predictor = CartPredictor().fit(fleet[:250])
        assert not predictor.predict(flat_trace(days=30).window(6, 7))

    def test_comparable_to_logistic(self, fleet):
        train, test = fleet[:250], fleet[250:]
        cart = evaluate(CartPredictor().fit(train), test)
        logistic = evaluate(LogisticPredictor(seed=0).fit(train), test)
        # Both families reach the literature's accuracy regime on this
        # fleet; the tree is within a modest margin of the linear model.
        assert cart.recall >= logistic.recall - 0.1
        assert cart.false_alarm_rate <= logistic.false_alarm_rate + 0.05

    def test_works_with_monitor(self, fleet):
        from repro.cluster import StorageCluster
        from repro.failure.monitor import ClusterFailureMonitor

        predictor = CartPredictor().fit(fleet[:250])
        cluster = StorageCluster.random(15, 30, 5, 3, seed=112)
        traces = SmartTraceGenerator(
            15, horizon_days=120, annual_failure_rate=0.5, seed=113
        ).generate()
        report = ClusterFailureMonitor(cluster, traces, predictor).run()
        for event in report.predicted_failures:
            assert event.day < event.actual_failure_day
