"""Chunk and stripe metadata.

These are the metadata objects the FastPR coordinator works on — the
Python analogue of what the paper's coordinator extracts from the HDFS
NameNode via ``hdfs fsck / -files -blocks -locations``: which stripe
every chunk belongs to and which node stores it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

NodeId = int
StripeId = int


@dataclass(frozen=True)
class ChunkLocation:
    """Identifies one chunk: the stripe it belongs to, its index within
    the stripe (0..n-1), and the node that stores it."""

    stripe_id: StripeId
    chunk_index: int
    node_id: NodeId

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"S{self.stripe_id}:C{self.chunk_index}@N{self.node_id}"


class Stripe:
    """A stripe of ``n`` erasure-coded chunks placed on distinct nodes.

    The placement maps chunk index -> node id and must stay injective
    on nodes (at most one chunk of a stripe per node) so that any
    ``n - k`` node failures are tolerable.
    """

    __slots__ = ("stripe_id", "n", "k", "_placement")

    def __init__(
        self,
        stripe_id: StripeId,
        n: int,
        k: int,
        placement: Sequence[NodeId],
    ):
        if len(placement) != n:
            raise ValueError(
                f"stripe {stripe_id}: placement has {len(placement)} nodes, "
                f"expected n={n}"
            )
        if len(set(placement)) != n:
            raise ValueError(
                f"stripe {stripe_id}: placement must use distinct nodes, "
                f"got {list(placement)}"
            )
        if not 0 < k < n:
            raise ValueError(f"require 0 < k < n, got n={n}, k={k}")
        self.stripe_id = stripe_id
        self.n = n
        self.k = k
        self._placement: List[NodeId] = list(placement)

    @property
    def placement(self) -> Tuple[NodeId, ...]:
        """Node id per chunk index."""
        return tuple(self._placement)

    @property
    def nodes(self) -> frozenset:
        """Set of nodes currently storing chunks of this stripe."""
        return frozenset(self._placement)

    def node_of(self, chunk_index: int) -> NodeId:
        """Node storing the chunk at ``chunk_index``."""
        return self._placement[chunk_index]

    def chunk_index_on(self, node_id: NodeId) -> int:
        """Chunk index stored on ``node_id``.

        Raises:
            KeyError: if the node stores no chunk of this stripe.
        """
        try:
            return self._placement.index(node_id)
        except ValueError:
            raise KeyError(
                f"node {node_id} stores no chunk of stripe {self.stripe_id}"
            ) from None

    def stores_on(self, node_id: NodeId) -> bool:
        """True if the stripe has a chunk on ``node_id``."""
        return node_id in self._placement

    def relocate(self, chunk_index: int, new_node: NodeId) -> None:
        """Move the chunk at ``chunk_index`` to ``new_node``.

        Raises:
            ValueError: if ``new_node`` already stores a chunk of this
                stripe (would break node-level fault tolerance).
        """
        if new_node in self._placement:
            raise ValueError(
                f"stripe {self.stripe_id}: node {new_node} already stores "
                f"chunk {self._placement.index(new_node)}"
            )
        self._placement[chunk_index] = new_node

    def locations(self) -> Iterator[ChunkLocation]:
        """Iterate the locations of all chunks of this stripe."""
        for idx, node in enumerate(self._placement):
            yield ChunkLocation(self.stripe_id, idx, node)

    def surviving_indices(self, failed_nodes: frozenset) -> List[int]:
        """Chunk indices not stored on any node in ``failed_nodes``."""
        return [
            idx
            for idx, node in enumerate(self._placement)
            if node not in failed_nodes
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Stripe(id={self.stripe_id}, n={self.n}, k={self.k}, "
            f"placement={self._placement})"
        )


@dataclass
class StripeCatalog:
    """Mutable index of stripes by id with per-node chunk lookup."""

    stripes: Dict[StripeId, Stripe] = field(default_factory=dict)

    def add(self, stripe: Stripe) -> None:
        if stripe.stripe_id in self.stripes:
            raise ValueError(f"duplicate stripe id {stripe.stripe_id}")
        self.stripes[stripe.stripe_id] = stripe

    def __getitem__(self, stripe_id: StripeId) -> Stripe:
        return self.stripes[stripe_id]

    def __iter__(self) -> Iterator[Stripe]:
        return iter(self.stripes.values())

    def __len__(self) -> int:
        return len(self.stripes)

    def chunks_on_node(self, node_id: NodeId) -> List[ChunkLocation]:
        """All chunk locations stored on a node (linear scan)."""
        found = []
        for stripe in self.stripes.values():
            if stripe.stores_on(node_id):
                found.append(
                    ChunkLocation(
                        stripe.stripe_id,
                        stripe.chunk_index_on(node_id),
                        node_id,
                    )
                )
        return found
