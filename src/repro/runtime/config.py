"""Runtime tuning knobs for the coordinator/agent testbed.

Every timeout that used to be a magic constant in the runtime lives
here, so tests can run with tight deadlines and production-like runs
can relax them.  The coordinator derives its *per-round* deadlines
from the Section III cost model (see
:meth:`~repro.runtime.coordinator.Coordinator._round_deadline`); the
values below bound and scale those estimates rather than replacing
them.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..core.serde import Schema

#: shared serde protocol (all fields optional: defaults fill gaps)
RUNTIME_CONFIG_SCHEMA = Schema(
    kind="RuntimeConfig",
    version=1,
    fields=(
        "ack_timeout",
        "join_timeout",
        "deadline_margin",
        "min_deadline",
        "max_retries",
        "backoff_base",
        "backoff_factor",
        "backoff_cap",
        "probe_timeout",
        "heartbeat_interval",
        "poll_interval",
        "journal_fsync",
        "lease_timeout",
        "inventory_timeout",
        "inbox_capacity",
        "send_queue_capacity",
        "connect_timeout",
        "drain_timeout",
        "pipeline_slices",
    ),
    implicit_version=1,
)


@dataclass(frozen=True)
class RuntimeConfig:
    """Timeouts, retry policy and health-check cadence of the runtime.

    Attributes:
        ack_timeout: ceiling (seconds) a sending agent waits for the
            destination's ``WriteComplete`` before NACKing the
            coordinator.  Also bounds a relay stage's wait for its
            upstream partial sum.
        join_timeout: seconds :meth:`Agent.stop` waits for each worker
            thread to exit.
        deadline_margin: multiplier applied to the cost-model estimate
            of a round's duration to obtain the coordinator's ACK
            deadline (covers emulation jitter and benign contention).
        min_deadline: floor (seconds) for any coordinator wait, so tiny
            test chunks do not produce sub-millisecond deadlines.
        max_retries: bounded per-action retries for transient faults
            (lost/corrupt packets, spurious NACKs) before the repair
            fails.
        backoff_base: first retry backoff (seconds).
        backoff_factor: exponential growth factor of the backoff.
        backoff_cap: upper bound (seconds) on a single backoff sleep.
        probe_timeout: seconds the coordinator waits for ``Pong``
            replies when deciding whether a silent node is dead.
        heartbeat_interval: agent -> coordinator heartbeat period in
            seconds; ``0`` disables heartbeats.
        poll_interval: granularity (seconds) of the coordinator's
            inbox polls and the agents' cancellable waits.
        journal_fsync: repair-journal durability policy — ``"always"``
            fsyncs every appended record, ``"never"`` leaves flushing
            to the OS (see :class:`repro.runtime.journal.RepairJournal`).
        lease_timeout: seconds a shard coordinator may go without
            renewing its liveness lease before the multi-coordinator
            supervisor declares it wedged and hands the shard to a
            successor (see :class:`repro.runtime.multicoord.MultiCoordinator`).
        inventory_timeout: seconds a recovering coordinator waits for
            :class:`~repro.runtime.messages.InventoryReply` messages
            when reconciling the journal against agent stores.
        inbox_capacity: bound on every endpoint's inbox queue; ``0``
            means unbounded.  A full inbox blocks the sender — the
            same backpressure an OS socket buffer exerts — so overload
            behaves identically on the in-memory and TCP backends.
        send_queue_capacity: bound on each TCP peer's outgoing frame
            queue; a full queue blocks the sending thread until the
            writer drains (per-peer backpressure over sockets).
        connect_timeout: total seconds a TCP peer connection may spend
            reconnecting (with exponential backoff) before frames to
            that peer are dropped as undeliverable.
        drain_timeout: seconds :meth:`TcpNetwork.close` waits for each
            peer's queued frames to flush before force-closing.
        pipeline_slices: slice count for chained (pipelined)
            reconstructions — each chunk is carved into this many
            slices streamed through the helper chain as
            :class:`~repro.runtime.messages.SlicePacket` frames with
            per-slice completion reports.  ``0`` keeps the legacy
            packet-granular chaining (no slice protocol on the wire).
    """

    ack_timeout: float = 120.0
    join_timeout: float = 30.0
    deadline_margin: float = 4.0
    min_deadline: float = 5.0
    max_retries: int = 3
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_cap: float = 5.0
    probe_timeout: float = 2.0
    heartbeat_interval: float = 0.5
    poll_interval: float = 0.25
    journal_fsync: str = "always"
    lease_timeout: float = 10.0
    inventory_timeout: float = 5.0
    inbox_capacity: int = 0
    send_queue_capacity: int = 64
    connect_timeout: float = 30.0
    drain_timeout: float = 10.0
    pipeline_slices: int = 0

    def __post_init__(self):
        if self.ack_timeout <= 0 or self.min_deadline <= 0:
            raise ValueError("timeouts must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.deadline_margin < 1.0:
            raise ValueError("deadline_margin must be >= 1")
        if self.journal_fsync not in ("always", "never"):
            raise ValueError("journal_fsync must be 'always' or 'never'")
        if self.inventory_timeout <= 0:
            raise ValueError("inventory_timeout must be positive")
        if self.lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        if self.inbox_capacity < 0:
            raise ValueError("inbox_capacity must be non-negative (0 = unbounded)")
        if self.send_queue_capacity < 1:
            raise ValueError("send_queue_capacity must be positive")
        if self.connect_timeout <= 0 or self.drain_timeout <= 0:
            raise ValueError("net timeouts must be positive")
        if self.pipeline_slices < 0:
            raise ValueError(
                "pipeline_slices must be non-negative (0 = packet-granular)"
            )

    def backoff(self, retry: int) -> float:
        """Backoff before the ``retry``-th reissue (1-based)."""
        delay = self.backoff_base * self.backoff_factor ** max(retry - 1, 0)
        return min(delay, self.backoff_cap)

    def to_dict(self) -> dict:
        """Versioned JSON form (ops configs, metrics-out provenance)."""
        return RUNTIME_CONFIG_SCHEMA.dump(asdict(self))

    @classmethod
    def from_dict(cls, document: dict) -> "RuntimeConfig":
        """Inverse of :meth:`to_dict`; omitted fields keep defaults,
        unknown keys raise so config-file typos surface."""
        return cls(**RUNTIME_CONFIG_SCHEMA.load(document))


#: defaults used when no config is passed anywhere
DEFAULT_CONFIG = RuntimeConfig()
