"""The hot-path bench (BENCH_hotpath.json) and the regression gate."""

import copy

import pytest

from repro.bench.smoke import (
    HOTPATH_SCHEMA,
    check_regressions,
    run_gf_kernels,
    run_transport_throughput,
    validate_hotpath,
)
from repro.net import shm_available


def test_gf_kernels_report_positive_rates():
    kernels = run_gf_kernels(buffer_bytes=1 << 20, repeats=1)
    assert kernels["buffer_bytes"] == 1 << 20
    for key in ("gf_mul_gb_s", "gf_addmul_gb_s", "gf_matmul_gb_s"):
        assert kernels[key] > 0


@pytest.mark.parametrize(
    "transport",
    [
        "memory",
        "tcp",
        pytest.param(
            "shm",
            marks=pytest.mark.skipif(
                not shm_available(), reason="needs POSIX shm + flock"
            ),
        ),
    ],
)
def test_transport_throughput_single_and_parallel(transport):
    entry = run_transport_throughput(
        transport,
        sizes=(1 << 12,),
        frames=4,
        parallel_streams=2,
        parallel_frames=2,
        parallel_size=1 << 12,
        repeats=1,
    )
    assert entry["transport"] == transport
    (run,) = entry["single"]
    # small payloads are padded up to a meaningful stream length
    assert run["frames"] >= 4
    assert run["mb_per_s"] > 0
    assert entry["parallel"]["streams"] == 2
    assert entry["parallel"]["mb_per_s"] > 0


def _hotpath_doc(mb_per_s=100.0, gb_s=1.0):
    return HOTPATH_SCHEMA.dump(
        {
            "kernels": {
                "buffer_bytes": 1 << 20,
                "gf_mul_gb_s": gb_s,
                "gf_addmul_gb_s": gb_s,
                "matmul_shape": [3, 6, 1 << 20],
                "gf_matmul_gb_s": gb_s,
            },
            "transports": [
                {
                    "transport": "tcp",
                    "single": [
                        {
                            "payload_bytes": 1 << 16,
                            "frames": 32,
                            "seconds": 0.1,
                            "frames_per_s": 320.0,
                            "mb_per_s": mb_per_s,
                        }
                    ],
                    "parallel": {
                        "streams": 4,
                        "payload_bytes": 1 << 20,
                        "frames": 16,
                        "seconds": 0.1,
                        "mb_per_s": mb_per_s,
                    },
                }
            ],
            "baseline": {
                "pre_pr_tcp_mb_per_s": {"65536": 83.5},
                "tcp_speedup": {"65536": mb_per_s / 83.5},
            },
        }
    )


def test_validate_hotpath_accepts_wellformed_doc():
    body = validate_hotpath(_hotpath_doc())
    assert body["transports"][0]["transport"] == "tcp"


def test_validate_hotpath_rejects_degenerate_kernel():
    with pytest.raises(ValueError, match="kernel"):
        validate_hotpath(_hotpath_doc(gb_s=0.0))


def test_regression_gate_fires_beyond_tolerance():
    committed = _hotpath_doc(mb_per_s=100.0)
    slower = _hotpath_doc(mb_per_s=60.0)  # 40% drop
    problems = check_regressions(committed, slower, tolerance=0.30)
    assert problems, "40% slowdown must trip a 30% gate"
    assert any("mb_per_s" in p for p in problems)


def test_regression_gate_tolerates_noise():
    committed = _hotpath_doc(mb_per_s=100.0)
    noisy = _hotpath_doc(mb_per_s=80.0)  # 20% drop, inside tolerance
    assert check_regressions(committed, noisy, tolerance=0.30) == []
    faster = _hotpath_doc(mb_per_s=500.0)
    assert check_regressions(committed, faster, tolerance=0.30) == []


def test_regression_gate_skips_different_configs():
    committed = _hotpath_doc(mb_per_s=100.0)
    different = copy.deepcopy(_hotpath_doc(mb_per_s=10.0))
    # a different payload size is a different experiment, not a slowdown
    different["transports"][0]["single"][0]["payload_bytes"] = 1 << 20
    assert check_regressions(committed, different, tolerance=0.30) == []


def test_regression_gate_skips_schema_version_changes():
    committed = _hotpath_doc(mb_per_s=100.0)
    new = copy.deepcopy(_hotpath_doc(mb_per_s=10.0))
    new["version"] = committed["version"] + 1
    assert check_regressions(committed, new, tolerance=0.30) == []
