"""Stripe-placement policies.

The paper's simulations place stripes uniformly at random; its related
work discusses parity declustering (Holland et al.), which spreads
stripes so that repair load is even across nodes.  Both are provided,
plus a deterministic round-robin used in unit tests.
"""

from __future__ import annotations

import itertools
import random
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

from .chunk import NodeId
from .cluster import StorageCluster


class PlacementPolicy(ABC):
    """Chooses the ``n`` nodes for each new stripe."""

    @abstractmethod
    def choose(self, cluster: StorageCluster, n: int) -> List[NodeId]:
        """Return ``n`` distinct storage-node ids for the next stripe."""

    def populate(
        self, cluster: StorageCluster, num_stripes: int, n: int, k: int
    ) -> None:
        """Add ``num_stripes`` stripes to the cluster using this policy."""
        for _ in range(num_stripes):
            cluster.add_stripe(n, k, self.choose(cluster, n))


class RandomPlacement(PlacementPolicy):
    """Uniform random placement (the paper's simulation default)."""

    def __init__(self, seed: Optional[int] = None):
        self._rng = random.Random(seed)

    def choose(self, cluster: StorageCluster, n: int) -> List[NodeId]:
        candidates = cluster.storage_node_ids()
        if n > len(candidates):
            raise ValueError(f"n={n} exceeds {len(candidates)} storage nodes")
        return self._rng.sample(candidates, n)


class RoundRobinPlacement(PlacementPolicy):
    """Deterministic rotation; every node gets near-identical load."""

    def __init__(self):
        self._cursor = 0

    def choose(self, cluster: StorageCluster, n: int) -> List[NodeId]:
        candidates = cluster.storage_node_ids()
        if n > len(candidates):
            raise ValueError(f"n={n} exceeds {len(candidates)} storage nodes")
        chosen = [
            candidates[(self._cursor + i) % len(candidates)] for i in range(n)
        ]
        self._cursor = (self._cursor + n) % len(candidates)
        return chosen


class ParityDeclusteredPlacement(PlacementPolicy):
    """Least-loaded placement approximating parity declustering.

    Each stripe goes to the ``n`` currently least-loaded nodes (random
    tie-break), which evens out both storage load and — crucially for
    repair — the number of stripes any one node participates in.
    """

    def __init__(self, seed: Optional[int] = None):
        self._rng = random.Random(seed)

    def choose(self, cluster: StorageCluster, n: int) -> List[NodeId]:
        candidates = cluster.storage_node_ids()
        if n > len(candidates):
            raise ValueError(f"n={n} exceeds {len(candidates)} storage nodes")
        self._rng.shuffle(candidates)
        candidates.sort(key=cluster.load_of)
        return candidates[:n]


def placement_balance(cluster: StorageCluster) -> float:
    """Return max/mean chunk-count ratio across storage nodes.

    1.0 means perfectly balanced; used by tests and the rebalancer.
    """
    loads = [cluster.load_of(nid) for nid in cluster.storage_node_ids()]
    mean = sum(loads) / len(loads)
    if mean == 0:
        return 1.0
    return max(loads) / mean
