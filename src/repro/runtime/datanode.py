"""On-disk chunk storage for one emulated DataNode.

Each node's agent owns a :class:`ChunkStore` — a directory of chunk
files (one per stripe the node participates in), with reads and writes
throttled by the node's emulated disk bandwidth.  This is the stand-in
for the HDFS DataNode block storage of the paper's testbed.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional

from ..cluster.chunk import NodeId, StripeId
from .throttle import RateLimiter


class ChunkStore:
    """Packet-granular chunk storage with disk-bandwidth emulation.

    Args:
        root: directory for this node's chunk files.
        node_id: owner node (used in file naming and errors).
        disk: rate limiter emulating the node's disk; reads and writes
            share it, like a single spindle.
    """

    def __init__(self, root: Path, node_id: NodeId, disk: RateLimiter):
        self.root = Path(root)
        self.node_id = node_id
        self.disk = disk
        self.root.mkdir(parents=True, exist_ok=True)
        self._sizes: Dict[StripeId, int] = {}
        #: stripe -> times a staged chunk was promoted here; the crash
        #: recovery tests assert this never exceeds 1 per repair
        self.promotions: Dict[StripeId, int] = {}

    def _path(self, stripe_id: StripeId) -> Path:
        return self.root / f"stripe_{stripe_id}.chunk"

    def _staging_path(self, stripe_id: StripeId) -> Path:
        return self.root / f"stripe_{stripe_id}.chunk.part"

    # ------------------------------------------------------------------

    def put(self, stripe_id: StripeId, data: bytes, throttled: bool = False) -> None:
        """Store a whole chunk (fixture loading; unthrottled by default)."""
        if throttled:
            self.disk.throttle(len(data))
        self._path(stripe_id).write_bytes(data)
        self._sizes[stripe_id] = len(data)

    def has(self, stripe_id: StripeId) -> bool:
        return stripe_id in self._sizes or self._path(stripe_id).exists()

    def size(self, stripe_id: StripeId) -> int:
        size = self._sizes.get(stripe_id)
        if size is None:
            try:
                size = self._path(stripe_id).stat().st_size
            except FileNotFoundError:
                raise KeyError(
                    f"node {self.node_id} stores no chunk of stripe {stripe_id}"
                ) from None
            self._sizes[stripe_id] = size
        return size

    def read_packet(self, stripe_id: StripeId, offset: int, length: int) -> bytes:
        """Read one packet, charged against the disk limiter."""
        self.disk.throttle(length)
        with open(self._path(stripe_id), "rb") as f:
            f.seek(offset)
            data = f.read(length)
        if len(data) != length:
            raise IOError(
                f"short read on stripe {stripe_id} at {offset}: "
                f"{len(data)} < {length}"
            )
        return data

    def read_packet_into(self, stripe_id: StripeId, offset: int, out) -> int:
        """Read one packet into a caller-owned buffer (throttled).

        ``out`` is any writable buffer (memoryview, numpy array); the
        read fills it completely.  This is the allocation-free variant
        of :meth:`read_packet` used by double-buffered pipelines.
        """
        length = len(out)
        self.disk.throttle(length)
        with open(self._path(stripe_id), "rb") as f:
            f.seek(offset)
            read = f.readinto(out)
        if read != length:
            raise IOError(
                f"short read on stripe {stripe_id} at {offset}: "
                f"{read} < {length}"
            )
        return read

    def write_packet(
        self,
        stripe_id: StripeId,
        offset: int,
        data: bytes,
        total_size: int,
        staged: bool = False,
    ) -> None:
        """Write one packet of a chunk being assembled.

        With ``staged=True`` the packet lands in a ``.part`` staging
        file that only becomes the chunk on :meth:`promote` — so a
        crashed or retried assembly never leaves a torn chunk behind.
        """
        self.disk.throttle(len(data))
        path = self._staging_path(stripe_id) if staged else self._path(stripe_id)
        if not path.exists():
            # Pre-size the file so packets may land in any order.
            with open(path, "wb") as f:
                f.truncate(total_size)
        with open(path, "r+b") as f:
            f.seek(offset)
            f.write(data)
        if not staged:
            self._sizes[stripe_id] = total_size

    def promote(self, stripe_id: StripeId) -> None:
        """Atomically publish a fully assembled staged chunk.

        ``os.replace`` is atomic on POSIX, so readers see either the
        old chunk (if any) or the complete new one — never a torn mix.
        """
        staging = self._staging_path(stripe_id)
        if not staging.exists():
            raise FileNotFoundError(
                f"node {self.node_id}: no staged chunk for stripe {stripe_id}"
            )
        size = staging.stat().st_size
        os.replace(staging, self._path(stripe_id))
        self._sizes[stripe_id] = size
        self.promotions[stripe_id] = self.promotions.get(stripe_id, 0) + 1

    def discard_staged(self, stripe_id: StripeId) -> None:
        """Drop a partial staged assembly (aborted or superseded)."""
        try:
            os.remove(self._staging_path(stripe_id))
        except FileNotFoundError:
            pass

    def read(self, stripe_id: StripeId, throttled: bool = False) -> bytes:
        """Read a whole chunk (verification; unthrottled by default)."""
        if throttled:
            self.disk.throttle(self.size(stripe_id))
        return self._path(stripe_id).read_bytes()

    def delete(self, stripe_id: StripeId) -> None:
        try:
            os.remove(self._path(stripe_id))
        except FileNotFoundError:
            pass
        self._sizes.pop(stripe_id, None)

    def stripes(self) -> List[StripeId]:
        """Stripe ids with a chunk stored here."""
        found = set(self._sizes)
        for path in self.root.glob("stripe_*.chunk"):
            found.add(int(path.stem.split("_", 1)[1]))
        return sorted(found)
