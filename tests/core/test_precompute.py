"""Tests for precomputed reconstruction sets (Section IV-D option 2)."""

import pytest

from repro.cluster import StorageCluster
from repro.core.planner import FastPRPlanner, apply_plan
from repro.core.precompute import (
    PrecomputedFastPRPlanner,
    ReconstructionSetCache,
)


@pytest.fixture
def cluster():
    c = StorageCluster.random(14, 50, 5, 3, num_hot_standby=2, seed=61)
    return c


class TestCache:
    def test_miss_then_hit(self, cluster):
        cache = ReconstructionSetCache(cluster, seed=0)
        first = cache.get(0)
        second = cache.get(0)
        assert first is second
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_warm_all_nodes(self, cluster):
        cache = ReconstructionSetCache(cluster, seed=0)
        computed = cache.warm()
        assert computed == cluster.num_storage_nodes
        assert len(cache) == cluster.num_storage_nodes
        cache.get(3)
        assert cache.stats.hits == 1

    def test_warm_skips_fresh_entries(self, cluster):
        cache = ReconstructionSetCache(cluster, seed=0)
        cache.warm([0, 1])
        assert cache.warm([0, 1]) == 0

    def test_metadata_change_invalidates(self, cluster):
        cache = ReconstructionSetCache(cluster, seed=0)
        cache.get(0)
        stripe = cluster.stripe(0)
        src = stripe.placement[0]
        dest = cluster.eligible_destinations(0)[0]
        cluster.relocate_chunk(0, 0, dest)
        cache.get(0)
        assert cache.stats.invalidations == 1
        assert cache.stats.misses == 2

    def test_cached_sets_match_direct_computation(self, cluster):
        from repro.core.reconstruction_sets import find_reconstruction_sets

        cache = ReconstructionSetCache(cluster, seed=5)
        node = max(cluster.storage_node_ids(), key=cluster.load_of)
        cached = cache.get(node)
        direct = find_reconstruction_sets(cluster, node, seed=5)
        key = lambda sets: sorted(
            sorted((c.stripe_id, c.chunk_index) for c in s) for s in sets
        )
        assert key(cached) == key(direct)


class TestPrecomputedPlanner:
    def test_plan_equivalent_to_fastpr(self, cluster):
        stf = max(cluster.storage_node_ids(), key=cluster.load_of)
        cluster.node(stf).mark_soon_to_fail()
        cache = ReconstructionSetCache(cluster, seed=0)
        cache.warm()
        precomputed = PrecomputedFastPRPlanner(cache).plan(cluster, stf)
        direct = FastPRPlanner(seed=0).plan(cluster, stf)
        precomputed.validate(cluster)
        keys = lambda p: sorted(
            (a.stripe_id, a.chunk_index, a.method.value) for a in p.actions()
        )
        assert keys(precomputed) == keys(direct)

    def test_planning_hits_cache(self, cluster):
        stf = 0
        cluster.node(stf).mark_soon_to_fail()
        cache = ReconstructionSetCache(cluster, seed=0)
        cache.warm([stf])
        misses_before = cache.stats.misses
        PrecomputedFastPRPlanner(cache).plan(cluster, stf)
        assert cache.stats.misses == misses_before
        assert cache.stats.hits >= 1

    def test_chunk_subset_recomputes(self, cluster):
        stf = max(cluster.storage_node_ids(), key=cluster.load_of)
        cluster.node(stf).mark_soon_to_fail()
        cache = ReconstructionSetCache(cluster, seed=0)
        cache.warm([stf])
        subset = cluster.chunks_on_node(stf)[:3]
        plan = PrecomputedFastPRPlanner(cache).plan(
            cluster, stf, chunks=subset
        )
        plan.validate(cluster, stf_chunks=subset)
        assert plan.total_chunks == 3

    def test_wrong_cluster_rejected(self, cluster):
        other = StorageCluster.random(14, 20, 5, 3, seed=62)
        other.node(0).mark_soon_to_fail()
        cache = ReconstructionSetCache(cluster, seed=0)
        with pytest.raises(ValueError, match="different cluster"):
            PrecomputedFastPRPlanner(cache).plan(other, 0)

    def test_apply_plan_invalidates_future_plans(self, cluster):
        stf = max(cluster.storage_node_ids(), key=cluster.load_of)
        cluster.node(stf).mark_soon_to_fail()
        cache = ReconstructionSetCache(cluster, seed=0)
        cache.warm()
        planner = PrecomputedFastPRPlanner(cache)
        plan = planner.plan(cluster, stf)
        apply_plan(cluster, plan)
        # The next STF node's entry is stale now; the cache recomputes
        # rather than serving pre-repair placements.
        next_stf = max(
            (n for n in cluster.healthy_storage_nodes()),
            key=cluster.load_of,
        )
        cluster.node(next_stf).mark_soon_to_fail()
        plan2 = planner.plan(cluster, next_stf)
        plan2.validate(cluster)
        assert cache.stats.invalidations >= 1
