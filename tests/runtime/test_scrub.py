"""Tests for background scrubbing of silent corruption."""

import pytest

from repro.cluster import StorageCluster
from repro.ec import make_codec
from repro.runtime.scrub import Scrubber
from repro.runtime.testbed import EmulatedTestbed

CHUNK = 16 * 1024


@pytest.fixture
def rig(tmp_path):
    cluster = StorageCluster.random(
        10,
        8,
        5,
        3,
        seed=101,
        disk_bandwidth=1e9,
        network_bandwidth=1e9,
        chunk_size=CHUNK,
    )
    codec = make_codec("rs(5,3)")
    testbed = EmulatedTestbed(cluster, codec, workdir=tmp_path)
    testbed.load_random_data(seed=102)
    yield cluster, testbed
    testbed.shutdown()


def corrupt_chunk(testbed, cluster, stripe_id, index, payload=None):
    node = cluster.stripe(stripe_id).node_of(index)
    data = payload if payload is not None else b"\xff" * CHUNK
    testbed.stores[node].put(stripe_id, data)
    return node


class TestScan:
    def test_clean_store(self, rig):
        cluster, testbed = rig
        report = Scrubber(testbed).scan()
        assert report.clean
        assert report.chunks_checked == 8 * 5

    def test_detects_bit_rot(self, rig):
        cluster, testbed = rig
        node = corrupt_chunk(testbed, cluster, 2, 1)
        report = Scrubber(testbed).scan()
        assert [(c.stripe_id, c.chunk_index, c.node_id) for c in report.corrupt] == [
            (2, 1, node)
        ]

    def test_detects_missing_chunk(self, rig):
        cluster, testbed = rig
        node = cluster.stripe(3).node_of(0)
        testbed.stores[node].delete(3)
        report = Scrubber(testbed).scan()
        assert len(report.corrupt) == 1


class TestScrub:
    def test_repairs_in_place(self, rig):
        cluster, testbed = rig
        corrupt_chunk(testbed, cluster, 1, 4)
        report = Scrubber(testbed).scrub()
        assert len(report.repaired) == 1
        assert not report.unrepairable
        assert Scrubber(testbed).scan().clean

    def test_repairs_multiple_within_tolerance(self, rig):
        cluster, testbed = rig
        corrupt_chunk(testbed, cluster, 0, 0)
        corrupt_chunk(testbed, cluster, 0, 3)  # n-k = 2: still decodable
        report = Scrubber(testbed).scrub()
        assert len(report.repaired) == 2
        assert Scrubber(testbed).scan().clean

    def test_unrepairable_beyond_tolerance(self, rig):
        cluster, testbed = rig
        for index in (0, 1, 2):  # 3 corrupt > n-k = 2
            corrupt_chunk(testbed, cluster, 5, index)
        report = Scrubber(testbed).scrub()
        assert len(report.unrepairable) == 3
        assert not report.repaired

    def test_never_decodes_from_corrupt_sources(self, rig):
        cluster, testbed = rig
        # Corrupt two chunks of the same stripe; both repairs must use
        # only the three clean chunks.
        corrupt_chunk(testbed, cluster, 6, 1)
        corrupt_chunk(testbed, cluster, 6, 2)
        Scrubber(testbed).scrub()
        testbed_report = Scrubber(testbed).scan()
        assert testbed_report.clean
