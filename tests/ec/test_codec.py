"""Tests for the codec registry and scheme parsing."""

import pytest

from repro.ec.codec import (
    check_equal_sizes,
    make_codec,
    registered_schemes,
)
from repro.ec.lrc import LocalReconstructionCodec
from repro.ec.reed_solomon import ReedSolomonCodec


class TestRegistry:
    def test_rs_registered(self):
        assert "rs" in registered_schemes()

    def test_lrc_registered(self):
        assert "lrc" in registered_schemes()

    def test_make_rs(self):
        codec = make_codec("rs(9,6)")
        assert isinstance(codec, ReedSolomonCodec)
        assert (codec.n, codec.k) == (9, 6)

    def test_make_rs_with_spaces_and_case(self):
        codec = make_codec("RS( 14 , 10 )")
        assert (codec.n, codec.k) == (14, 10)

    def test_make_lrc(self):
        codec = make_codec("lrc(12,2,2)")
        assert isinstance(codec, LocalReconstructionCodec)
        assert codec.n == 16

    def test_unknown_scheme(self):
        with pytest.raises(ValueError, match="unknown codec"):
            make_codec("raptor(9,6)")

    def test_msr_registered(self):
        assert "msr" in registered_schemes()

    def test_unparseable(self):
        with pytest.raises(ValueError, match="unparseable"):
            make_codec("rs-9-6")

    def test_paper_codes_instantiable(self):
        for scheme in ("rs(9,6)", "rs(14,10)", "rs(16,12)"):
            codec = make_codec(scheme)
            assert codec.k < codec.n


class TestCheckEqualSizes:
    def test_ok(self):
        assert check_equal_sizes([b"ab", b"cd"]) == 2

    def test_empty(self):
        with pytest.raises(ValueError):
            check_equal_sizes([])

    def test_mismatch(self):
        with pytest.raises(ValueError, match="chunk 1"):
            check_equal_sizes([b"ab", b"c"])

    def test_expected_override(self):
        with pytest.raises(ValueError):
            check_equal_sizes([b"ab"], expected=3)
