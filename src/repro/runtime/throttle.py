"""Bandwidth emulation via reservation-based rate limiters.

The testbed-substitute runtime moves real bytes between threads, but
emulates the paper's disk/network bandwidths (``b_d``, ``b_n``) with
rate limiters.  Each limiter models one serial device: a request for
``n`` bytes reserves the device for ``n / rate`` seconds starting when
the device next frees up, then sleeps until that reservation completes.
This matches the serial-resource semantics of the discrete-event
simulator, but in wall-clock time.

Fairness (DESIGN.md §15): strict FIFO reservation lets one huge
reservation push ``_next_free`` far into the future, so a 4 KiB client
request queued behind a 100 MB repair reservation would wait out the
whole backlog.  Requests of at most ``small_grant_bytes`` therefore
take a *small-grant fast path* while a larger-than-small reservation
is still occupying the device: they are granted immediately (serialized
only against other small grants), and the device's tail is pushed back
by their duration instead — work-conserving, so the long-run rate is
unchanged; only the large flow's *future* reservations absorb the
delay.  With no large reservation pending the limiter behaves exactly
as before (pure FIFO), so repair-only workloads see identical timing.
"""

from __future__ import annotations

import threading
import time
from typing import Optional


class RateLimiter:
    """A serial device with a fixed byte rate.

    Args:
        rate: bytes per second; ``None`` or ``float('inf')`` disables
            throttling (used when loading fixtures).
        name: label for diagnostics.
        stop: optional shutdown event; a set event interrupts any
            throttled sleep immediately, so a testbed teardown never
            waits out emulated transfer time.
        metrics: optional :class:`~repro.obs.MetricsRegistry`; when
            set, every :meth:`throttle` observes its wait into the
            ``ratelimiter_wait_seconds`` histogram and counts bytes
            into ``ratelimiter_bytes_total``, labeled by ``labels``.
        labels: metric labels identifying this device (e.g.
            ``{"device": "disk", "node": 3}``).
        small_grant_bytes: requests at most this large take the
            small-grant fast path while a larger reservation is still
            pending (see the module docstring); 0 disables it.
    """

    def __init__(
        self,
        rate: Optional[float],
        name: str = "",
        stop: Optional[threading.Event] = None,
        metrics=None,
        labels: Optional[dict] = None,
        small_grant_bytes: int = 256 * 1024,
    ):
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = rate
        self.name = name
        self.stop = stop
        self.small_grant_bytes = max(int(small_grant_bytes), 0)
        self._lock = threading.Lock()
        self._next_free = 0.0  # monotonic timestamp
        #: serializes concurrent small grants riding the fast path
        self._small_cursor = 0.0
        #: deadline of the newest larger-than-small reservation; the
        #: fast path is live only while this lies in the future
        self._large_until = 0.0
        #: cumulative bytes passed through (for throughput assertions)
        self.bytes_total = 0
        self.labels = dict(labels or {})
        self._wait_hist = None
        self._bytes_counter = None
        if metrics is not None:
            self._wait_hist = metrics.histogram(
                "ratelimiter_wait_seconds",
                "emulated-device reservation wait per throttled request",
            )
            self._bytes_counter = metrics.counter(
                "ratelimiter_bytes_total",
                "bytes passed through each emulated serial device",
            )

    @property
    def unlimited(self) -> bool:
        return self.rate is None or self.rate == float("inf")

    def reserve(self, nbytes: int) -> float:
        """Reserve the device for ``nbytes``; returns the wake deadline.

        Does not sleep; callers combine reservations (e.g. sender +
        receiver NIC) before sleeping via :func:`sleep_until`.

        A request of at most ``small_grant_bytes`` arriving while a
        larger reservation is still pending is granted out of FIFO
        order with a wait bounded by its own duration (plus any queued
        small grants); the device tail is extended by the same amount,
        conserving the long-run rate.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        now = time.monotonic()
        if self.unlimited:
            return now
        duration = nbytes / self.rate
        with self._lock:
            if self._small_fastpath(nbytes, now):
                start = max(now, self._small_cursor)
                deadline = start + duration
                self._small_cursor = deadline
                self._next_free += duration  # the backlog pays the time
                self.bytes_total += nbytes
                return deadline
            start = max(now, self._next_free)
            deadline = start + duration
            self._next_free = deadline
            if nbytes > self.small_grant_bytes:
                self._large_until = deadline
            self.bytes_total += nbytes
            return deadline

    def _small_fastpath(self, nbytes: int, now: float) -> bool:
        """True when ``nbytes`` may jump the queue (lock must be held)."""
        return (
            0 < self.small_grant_bytes >= nbytes
            and self._large_until > now
        )

    def throttle(self, nbytes: int) -> None:
        """Reserve and sleep until the reservation completes.

        The sleep is interruptible via the limiter's ``stop`` event.
        """
        deadline = self.reserve(nbytes)
        if self._wait_hist is not None:
            self._wait_hist.observe(
                max(deadline - time.monotonic(), 0.0), **self.labels
            )
            self._bytes_counter.inc(nbytes, **self.labels)
        sleep_until(deadline, stop=self.stop)


def sleep_until(
    deadline: float, stop: Optional[threading.Event] = None
) -> None:
    """Sleep until a ``time.monotonic`` deadline (no-op if past).

    With ``stop`` set, the wait aborts as soon as the event fires —
    shutdown must not block on emulated bandwidth reservations.
    """
    remaining = deadline - time.monotonic()
    if remaining <= 0:
        return
    if stop is not None:
        stop.wait(timeout=remaining)
    else:
        time.sleep(remaining)


def reserve_transfer(
    sender: RateLimiter, receiver: RateLimiter, nbytes: int
) -> float:
    """Reserve a transfer occupying both NICs; returns the deadline.

    Both devices are held for the same window, whose length is set by
    the slower of the two rates — the semantics the analysis assumes
    for its single ``c/b_n`` terms.
    """
    if sender.unlimited and receiver.unlimited:
        return time.monotonic()
    rates = [lim.rate for lim in (sender, receiver) if not lim.unlimited]
    duration = nbytes / min(rates)
    # Lock in a fixed global order to avoid deadlock.
    first, second = sorted((sender, receiver), key=id)
    with first._lock:
        with second._lock:
            now = time.monotonic()
            limited = [lim for lim in (sender, receiver) if not lim.unlimited]
            # Small-grant fast path (see RateLimiter.reserve): the
            # transfer may overtake a limiter's backlog only where a
            # large reservation is the thing in the way; on the other
            # limiter it queues normally.  Both NICs still cover the
            # identical [start, deadline] window.
            jumping = [
                lim for lim in limited if lim._small_fastpath(nbytes, now)
            ]
            if jumping:
                start = now
                for lim in limited:
                    if lim in jumping:
                        start = max(start, lim._small_cursor)
                    else:
                        start = max(start, lim._next_free)
                deadline = start + duration
                for lim in limited:
                    if lim in jumping:
                        lim._small_cursor = deadline
                        lim._next_free += duration  # backlog pays
                    else:
                        lim._next_free = deadline
                    lim.bytes_total += nbytes
                return deadline
            start = now
            for lim in limited:
                start = max(start, lim._next_free)
            deadline = start + duration
            for lim in limited:
                lim._next_free = deadline
                if nbytes > lim.small_grant_bytes:
                    lim._large_until = deadline
                lim.bytes_total += nbytes
            return deadline
